// Package rtree provides the in-memory R-tree the paper assumes as the
// spatial index over the dataset ("we assume that D is organized by a
// spatial index, such as an R-tree"). It supports STR bulk loading for the
// benchmark datasets, incremental insertion with Guttman's quadratic split
// for dynamic use, window search, and direct node access for the
// branch-and-bound (BBS) traversals of the skyband package.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultFanout is the default maximum number of entries per node. With
// 8-byte coordinates and low dimensionality this approximates the page
// utilization used in the paper's experimental setup.
const DefaultFanout = 64

// Entry is a node slot: a minimum bounding box plus either a child node
// (internal levels) or a record id (leaf level).
type Entry struct {
	Min, Max []float64
	Child    *Node
	RecordID int
}

// Node is an R-tree node. Nodes are exposed read-only so that search
// algorithms in other packages (e.g., BBS) can traverse the structure
// without the tree dictating an iteration order.
type Node struct {
	leaf    bool
	entries []Entry
}

// Leaf reports whether the node is at the leaf level.
func (n *Node) Leaf() bool { return n.leaf }

// Entries returns the node's entry slice. Callers must not modify it.
func (n *Node) Entries() []Entry { return n.entries }

// Tree is an in-memory R-tree over d-dimensional points.
type Tree struct {
	dim    int
	fanout int
	root   *Node
	size   int
}

// New returns an empty R-tree for points of the given dimensionality.
func New(dim, fanout int) (*Tree, error) {
	if dim <= 0 {
		return nil, errors.New("rtree: non-positive dimensionality")
	}
	if fanout < 4 {
		return nil, fmt.Errorf("rtree: fanout %d too small (minimum 4)", fanout)
	}
	return &Tree{dim: dim, fanout: fanout, root: &Node{leaf: true}}, nil
}

// BulkLoad builds a tree over the given points using the Sort-Tile-Recursive
// packing algorithm. Record ids are the point indices.
func BulkLoad(points [][]float64, fanout int) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("rtree: cannot bulk-load an empty point set")
	}
	dim := len(points[0])
	t, err := New(dim, fanout)
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("rtree: point %d has dimension %d, want %d", i, len(p), dim)
		}
		entries[i] = Entry{Min: p, Max: p, RecordID: i}
	}
	leaves := strPack(entries, dim, fanout, 0)
	nodes := make([]*Node, len(leaves))
	for i, le := range leaves {
		nodes[i] = &Node{leaf: true, entries: le}
	}
	for len(nodes) > 1 {
		parents := make([]*Node, 0, (len(nodes)+fanout-1)/fanout)
		for i := 0; i < len(nodes); i += fanout {
			end := i + fanout
			if end > len(nodes) {
				end = len(nodes)
			}
			parent := &Node{}
			for _, child := range nodes[i:end] {
				mn, mx := nodeMBB(child)
				parent.entries = append(parent.entries, Entry{Min: mn, Max: mx, Child: child})
			}
			parents = append(parents, parent)
		}
		nodes = parents
	}
	t.root = nodes[0]
	t.size = len(points)
	return t, nil
}

// strPack recursively tiles entries into leaf pages, sorting on successive
// dimensions.
func strPack(entries []Entry, dim, fanout, depth int) [][]Entry {
	if depth == dim-1 || len(entries) <= fanout {
		sort.Slice(entries, func(i, j int) bool { return entries[i].Min[depth] < entries[j].Min[depth] })
		out := make([][]Entry, 0, (len(entries)+fanout-1)/fanout)
		for i := 0; i < len(entries); i += fanout {
			end := i + fanout
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, entries[i:end:end])
		}
		return out
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Min[depth] < entries[j].Min[depth] })
	pages := (len(entries) + fanout - 1) / fanout
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-depth))))
	if slabs < 1 {
		slabs = 1
	}
	per := (len(entries) + slabs - 1) / slabs
	var out [][]Entry
	for i := 0; i < len(entries); i += per {
		end := i + per
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strPack(entries[i:end:end], dim, fanout, depth+1)...)
	}
	return out
}

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Root returns the root node for external traversals.
func (t *Tree) Root() *Node { return t.root }

// Height returns the number of levels (1 for a tree holding only a leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].Child {
		h++
	}
	return h
}

// Insert adds a point with the given record id.
func (t *Tree) Insert(p []float64, id int) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dimension %d, want %d", len(p), t.dim)
	}
	e := Entry{Min: append([]float64(nil), p...), Max: append([]float64(nil), p...), RecordID: id}
	split := t.insert(t.root, e)
	if split != nil {
		oldRoot := t.root
		mn1, mx1 := nodeMBB(oldRoot)
		mn2, mx2 := nodeMBB(split)
		t.root = &Node{entries: []Entry{
			{Min: mn1, Max: mx1, Child: oldRoot},
			{Min: mn2, Max: mx2, Child: split},
		}}
	}
	t.size++
	return nil
}

// insert recursively places e under n, returning a sibling node if n split.
func (t *Tree) insert(n *Node, e Entry) *Node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.fanout {
			return t.splitNode(n)
		}
		return nil
	}
	best := t.chooseSubtree(n, e)
	split := t.insert(n.entries[best].Child, e)
	n.entries[best].Min, n.entries[best].Max = nodeMBB(n.entries[best].Child)
	if split != nil {
		mn, mx := nodeMBB(split)
		n.entries = append(n.entries, Entry{Min: mn, Max: mx, Child: split})
		if len(n.entries) > t.fanout {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBB needs the least enlargement to
// cover e, breaking ties by smaller volume.
func (t *Tree) chooseSubtree(n *Node, e Entry) int {
	best := 0
	bestEnl := math.Inf(1)
	bestVol := math.Inf(1)
	for i := range n.entries {
		enl, vol := enlargement(n.entries[i].Min, n.entries[i].Max, e.Min, e.Max)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// splitNode applies Guttman's quadratic split, mutating n to hold one group
// and returning a new node with the other.
func (t *Tree) splitNode(n *Node) *Node {
	entries := n.entries
	// Pick the pair of seeds wasting the most volume if grouped together.
	seed1, seed2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			mn, mx := combineMBB(entries[i].Min, entries[i].Max, entries[j].Min, entries[j].Max)
			waste := volume(mn, mx) - volume(entries[i].Min, entries[i].Max) - volume(entries[j].Min, entries[j].Max)
			if waste > worst {
				worst, seed1, seed2 = waste, i, j
			}
		}
	}
	g1 := []Entry{entries[seed1]}
	g2 := []Entry{entries[seed2]}
	mn1, mx1 := cloneBox(entries[seed1].Min, entries[seed1].Max)
	mn2, mx2 := cloneBox(entries[seed2].Min, entries[seed2].Max)
	minFill := t.fanout / 2
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seed1 && i != seed2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining entries to
		// reach minimum fill.
		if len(g1)+len(rest) == minFill {
			g1 = append(g1, rest...)
			for _, e := range rest {
				mn1, mx1 = combineMBB(mn1, mx1, e.Min, e.Max)
			}
			break
		}
		if len(g2)+len(rest) == minFill {
			g2 = append(g2, rest...)
			for _, e := range rest {
				mn2, mx2 = combineMBB(mn2, mx2, e.Min, e.Max)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		var bestD1, bestD2 float64
		for i, e := range rest {
			d1, _ := enlargement(mn1, mx1, e.Min, e.Max)
			d2, _ := enlargement(mn2, mx2, e.Min, e.Max)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestD1 < bestD2 || (bestD1 == bestD2 && len(g1) < len(g2)) {
			g1 = append(g1, e)
			mn1, mx1 = combineMBB(mn1, mx1, e.Min, e.Max)
		} else {
			g2 = append(g2, e)
			mn2, mx2 = combineMBB(mn2, mx2, e.Min, e.Max)
		}
	}
	n.entries = g1
	return &Node{leaf: n.leaf, entries: g2}
}

// Search returns the ids of all points inside the window [mn, mx].
func (t *Tree) Search(mn, mx []float64) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, e := range n.entries {
			if !boxesOverlap(e.Min, e.Max, mn, mx) {
				continue
			}
			if n.leaf {
				out = append(out, e.RecordID)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(t.root)
	return out
}

// Validate checks structural invariants: MBBs cover children, leaves at the
// same depth, fanout respected. Intended for tests.
func (t *Tree) Validate() error {
	depths := map[int]bool{}
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		if len(n.entries) == 0 && n != t.root {
			return errors.New("rtree: empty non-root node")
		}
		if len(n.entries) > t.fanout {
			return fmt.Errorf("rtree: node exceeds fanout: %d > %d", len(n.entries), t.fanout)
		}
		if n.leaf {
			depths[depth] = true
			return nil
		}
		for _, e := range n.entries {
			cmn, cmx := nodeMBB(e.Child)
			for i := 0; i < t.dim; i++ {
				if cmn[i] < e.Min[i]-1e-12 || cmx[i] > e.Max[i]+1e-12 {
					return fmt.Errorf("rtree: entry MBB does not cover child in dimension %d", i)
				}
			}
			if err := walk(e.Child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if len(depths) > 1 {
		return errors.New("rtree: leaves at differing depths")
	}
	return nil
}

func nodeMBB(n *Node) ([]float64, []float64) {
	mn := append([]float64(nil), n.entries[0].Min...)
	mx := append([]float64(nil), n.entries[0].Max...)
	for _, e := range n.entries[1:] {
		mn, mx = combineMBB(mn, mx, e.Min, e.Max)
	}
	return mn, mx
}

func combineMBB(mn1, mx1, mn2, mx2 []float64) ([]float64, []float64) {
	mn := make([]float64, len(mn1))
	mx := make([]float64, len(mx1))
	for i := range mn {
		mn[i] = math.Min(mn1[i], mn2[i])
		mx[i] = math.Max(mx1[i], mx2[i])
	}
	return mn, mx
}

func cloneBox(mn, mx []float64) ([]float64, []float64) {
	return append([]float64(nil), mn...), append([]float64(nil), mx...)
}

func volume(mn, mx []float64) float64 {
	v := 1.0
	for i := range mn {
		v *= mx[i] - mn[i]
	}
	return v
}

// enlargement returns how much the box [mn, mx] must grow (in volume) to
// cover [emn, emx], and the volume of the grown box.
func enlargement(mn, mx, emn, emx []float64) (float64, float64) {
	gmn, gmx := combineMBB(mn, mx, emn, emx)
	gv := volume(gmn, gmx)
	return gv - volume(mn, mx), gv
}

func boxesOverlap(mn1, mx1, mn2, mx2 []float64) bool {
	for i := range mn1 {
		if mx1[i] < mn2[i] || mx2[i] < mn1[i] {
			return false
		}
	}
	return true
}
