package rtree

import (
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestBulkLoadInvariantsAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 63, 64, 65, 1000, 5000} {
		pts := randomPoints(rng, n, 3)
		tree, err := BulkLoad(pts, 16)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ids := tree.Search([]float64{0, 0, 0}, []float64{1, 1, 1})
		if len(ids) != n {
			t.Fatalf("n=%d: full-window search returned %d", n, len(ids))
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	if _, err := BulkLoad(nil, 16); err == nil {
		t.Fatal("empty bulk load should fail")
	}
	if _, err := BulkLoad([][]float64{{1, 2}, {1}}, 16); err == nil {
		t.Fatal("ragged points should fail")
	}
	if _, err := New(0, 16); err == nil {
		t.Fatal("zero dimension should fail")
	}
	if _, err := New(2, 2); err == nil {
		t.Fatal("tiny fanout should fail")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 2000, 2)
	tree, err := BulkLoad(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := []float64{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := []float64{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2}
		got := tree.Search(lo, hi)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1] {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result mismatch", trial)
			}
		}
	}
}

func TestInsertIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(rng, 500, 2)
	for i, p := range pts {
		if err := tree.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	ids := tree.Search([]float64{0, 0}, []float64{1, 1})
	if len(ids) != 500 {
		t.Fatalf("search after inserts returned %d", len(ids))
	}
	if err := tree.Insert([]float64{0.5}, 501); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestInsertSearchAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree, _ := New(3, 8)
	pts := randomPoints(rng, 800, 3)
	for i, p := range pts {
		if err := tree.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	lo := []float64{0.2, 0.2, 0.2}
	hi := []float64{0.7, 0.7, 0.7}
	got := tree.Search(lo, hi)
	sort.Ints(got)
	var want []int
	for i, p := range pts {
		in := true
		for j := range p {
			if p[j] < lo[j] || p[j] > hi[j] {
				in = false
				break
			}
		}
		if in {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("mismatch")
		}
	}
}

func TestHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 10000, 2)
	tree, _ := BulkLoad(pts, 16)
	h := tree.Height()
	if h < 3 || h > 5 {
		t.Fatalf("height = %d for 10k points at fanout 16", h)
	}
}
