package rtree

import "math"

// Delete removes one record with the given id located at point p. It
// reports whether a matching entry was found. Underfull nodes are condensed
// per Guttman's algorithm: their remaining entries are reinserted, and the
// root is collapsed when it has a single child.
func (t *Tree) Delete(p []float64, id int) bool {
	if len(p) != t.dim {
		return false
	}
	leaf, entryIdx, path := t.findLeaf(t.root, p, id, nil)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:entryIdx], leaf.entries[entryIdx+1:]...)
	t.size--
	t.condense(leaf, path)
	// Collapse a non-leaf root with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].Child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &Node{leaf: true}
	}
	return true
}

// findLeaf locates the leaf and entry index holding (p, id), returning the
// root-to-parent path for condensation.
func (t *Tree) findLeaf(n *Node, p []float64, id int, path []*Node) (*Node, int, []*Node) {
	if n.leaf {
		for i, e := range n.entries {
			if e.RecordID != id {
				continue
			}
			match := true
			for j := range p {
				if math.Abs(e.Min[j]-p[j]) > 1e-12 {
					match = false
					break
				}
			}
			if match {
				return n, i, path
			}
		}
		return nil, 0, nil
	}
	for _, e := range n.entries {
		if !boxContains(e.Min, e.Max, p) {
			continue
		}
		if leaf, idx, pp := t.findLeaf(e.Child, p, id, append(path, n)); leaf != nil {
			return leaf, idx, pp
		}
	}
	return nil, 0, nil
}

// condense walks the path bottom-up, removing underfull nodes and queueing
// their entries for reinsertion, then refreshes ancestor MBBs.
func (t *Tree) condense(n *Node, path []*Node) {
	minFill := t.fanout / 4
	if minFill < 1 {
		minFill = 1
	}
	var orphans []Entry
	node := n
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		if len(node.entries) < minFill {
			// Remove node from its parent and queue its entries.
			for j := range parent.entries {
				if parent.entries[j].Child == node {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			orphans = append(orphans, collectLeafEntries(node)...)
		} else {
			// Refresh the parent entry's MBB.
			for j := range parent.entries {
				if parent.entries[j].Child == node {
					parent.entries[j].Min, parent.entries[j].Max = nodeMBB(node)
					break
				}
			}
		}
		node = parent
	}
	for _, e := range orphans {
		t.size--
		if err := t.Insert(e.Min, e.RecordID); err != nil {
			// Cannot happen: the entry came from this tree.
			panic("rtree: reinsert failed: " + err.Error())
		}
	}
}

// collectLeafEntries gathers every record entry below n.
func collectLeafEntries(n *Node) []Entry {
	if n.leaf {
		return append([]Entry(nil), n.entries...)
	}
	var out []Entry
	for _, e := range n.entries {
		out = append(out, collectLeafEntries(e.Child)...)
	}
	return out
}

func boxContains(mn, mx, p []float64) bool {
	for i := range p {
		if p[i] < mn[i]-1e-12 || p[i] > mx[i]+1e-12 {
			return false
		}
	}
	return true
}
