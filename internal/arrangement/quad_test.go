package arrangement

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestQuadBasics(t *testing.T) {
	q, err := NewQuad([]float64{0.1, 0.1}, []float64{0.4, 0.4}, 8, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.MinCount() != 0 {
		t.Fatalf("empty index MinCount = %d", q.MinCount())
	}
	q.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.0}) // covers box
	if q.MinCount() != 1 {
		t.Fatalf("MinCount after full cover = %d", q.MinCount())
	}
	q.Insert(1, geom.Halfspace{A: []float64{1, 0}, B: 0.9}) // misses box
	if q.MinCount() != 1 {
		t.Fatalf("MinCount after miss = %d", q.MinCount())
	}
	q.Insert(2, geom.Halfspace{A: []float64{1, 0}, B: 0.25}) // splits
	if q.MinCount() != 1 {
		t.Fatalf("MinCount after split = %d", q.MinCount())
	}
	pt, cov, ok := q.CellBelow(2)
	if !ok {
		t.Fatal("a cell below threshold 2 must exist")
	}
	if pt[0] >= 0.25 {
		t.Fatalf("witness %v should be on the uncovered side of w1 ≥ 0.25", pt)
	}
	if !cov.Has(0) || cov.Has(1) || cov.Has(2) {
		t.Fatalf("covering set wrong: %v", cov.Indices())
	}
	if _, _, ok := q.CellBelow(1); ok {
		t.Fatal("everything is covered at least once")
	}
}

func TestQuadTrivialHalfspaces(t *testing.T) {
	q, err := NewQuad([]float64{0.1}, []float64{0.2}, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Insert(0, geom.Halfspace{A: []float64{0}, B: -1}) // always true
	q.Insert(1, geom.Halfspace{A: []float64{0}, B: 1})  // always false
	if q.MinCount() != 1 {
		t.Fatalf("MinCount = %d, want 1", q.MinCount())
	}
}

func TestQuadValidation(t *testing.T) {
	if _, err := NewQuad(nil, nil, 4, 4, nil); err == nil {
		t.Fatal("empty corners should fail")
	}
	if _, err := NewQuad([]float64{0.2}, []float64{0.2}, 4, 4, nil); err == nil {
		t.Fatal("degenerate box should fail")
	}
}

// TestQuadMatchesBinary inserts identical random half-space sets into the
// quad index and the binary arrangement and compares the exact minimum
// coverage counts and threshold queries.
func TestQuadMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(3)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range lo {
			lo[i] = 0.05 + rng.Float64()*0.1
			hi[i] = lo[i] + 0.1 + rng.Float64()*0.2/float64(dim)
		}
		nHS := 2 + rng.Intn(8)
		quad, err := NewQuad(lo, hi, nHS, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := New(dim, boxHalfspaces(lo, hi), nHS, nil)
		if err != nil {
			t.Fatal(err)
		}
		var inserted []geom.Halfspace
		for id := 0; id < nHS; id++ {
			h := geom.Halfspace{A: make([]float64, dim)}
			for i := range h.A {
				h.A[i] = rng.NormFloat64()
			}
			mid := make([]float64, dim)
			for i := range mid {
				mid[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			for i := range h.A {
				h.B += h.A[i] * mid[i]
			}
			// Shift some boundaries off the box to exercise cover/miss paths.
			if rng.Intn(3) == 0 {
				h.B += rng.NormFloat64() * 0.3
			}
			quad.Insert(id, h)
			bin.Insert(id, h)
			inserted = append(inserted, h)
		}
		if qm, bm := quad.MinCount(), bin.MinCount(); qm != bm {
			t.Fatalf("trial %d: quad MinCount %d != binary %d", trial, qm, bm)
		}
		for threshold := 1; threshold <= nHS; threshold++ {
			pt, cov, ok := quad.CellBelow(threshold)
			binOK := bin.MinCount() < threshold
			if ok != binOK {
				t.Fatalf("trial %d threshold %d: quad %v, binary %v", trial, threshold, ok, binOK)
			}
			if !ok {
				continue
			}
			// The witness must actually be covered by exactly the reported
			// half-spaces and fewer than threshold of them.
			cnt := 0
			for id, h := range inserted {
				if h.Eval(pt) > 0 {
					cnt++
					if !cov.Has(id) {
						t.Fatalf("trial %d: covering set misses %d at %v", trial, id, pt)
					}
				}
			}
			if cnt >= threshold {
				t.Fatalf("trial %d: witness %v covered %d ≥ %d times", trial, pt, cnt, threshold)
			}
		}
	}
}
