package arrangement

import (
	"errors"

	"repro/internal/bitset"
	"repro/internal/geom"
)

// QuadIndex is the space-partitioning alternative for arrangement
// maintenance that Section 4.5 contrasts with the binary split tree (the
// approach of [50, 35]): the region — a box in the preference domain — is
// subdivided into quads, each half-space is distributed down the quad tree
// with O(d) box classification (no LPs), and only quads still straddled by
// several half-spaces at the depth limit fall back to a small embedded
// binary-tree arrangement for exact resolution.
//
// The library uses the binary tree by default, as the paper does; the quad
// index exists for the design-choice ablation (BenchmarkQuadVsBinary) and
// as an exact alternative that trades LP calls for spatial subdivision.
type QuadIndex struct {
	dim      int
	capacity int
	maxDepth int
	root     *quadNode
	stats    *Stats
}

// quadLeafFanout is the number of straddling half-spaces a quad tolerates
// before subdividing (until maxDepth).
const quadLeafFanout = 3

type quadNode struct {
	lo, hi []float64
	// covering holds the ids of half-spaces that fully cover this quad but
	// not the parent (counted once on the path).
	covering []int
	// straddling holds half-spaces whose boundary crosses the quad; only
	// leaves keep them.
	straddling []geom.Halfspace
	strIDs     []int
	children   []*quadNode
	depth      int
}

// NewQuad builds a quad index over the box [lo, hi]. capacity bounds the
// half-space ids; maxDepth caps subdivision (8 is plenty for the paper's
// region sizes). stats may be nil.
func NewQuad(lo, hi []float64, capacity, maxDepth int, stats *Stats) (*QuadIndex, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return nil, errors.New("arrangement: quad index needs matching box corners")
	}
	for i := range lo {
		if hi[i]-lo[i] < geom.Eps {
			return nil, ErrEmptyCell
		}
	}
	if stats == nil {
		stats = &Stats{}
	}
	if maxDepth <= 0 {
		maxDepth = 8
	}
	return &QuadIndex{
		dim:      len(lo),
		capacity: capacity,
		maxDepth: maxDepth,
		root: &quadNode{
			lo: append([]float64(nil), lo...),
			hi: append([]float64(nil), hi...),
		},
		stats: stats,
	}, nil
}

// Insert distributes the half-space down the quad tree.
func (q *QuadIndex) Insert(id int, h geom.Halfspace) {
	if h.IsTrivial() {
		if h.B <= geom.Eps {
			q.root.covering = append(q.root.covering, id)
		}
		return
	}
	q.insert(q.root, id, h)
}

func (q *QuadIndex) insert(n *quadNode, id int, h geom.Halfspace) {
	mn, mx := boxExtremesQuad(h, n.lo, n.hi)
	switch {
	case mn >= -classEps:
		n.covering = append(n.covering, id)
		return
	case mx <= classEps:
		return
	}
	if n.children != nil {
		for _, c := range n.children {
			q.insert(c, id, h)
		}
		return
	}
	n.straddling = append(n.straddling, h)
	n.strIDs = append(n.strIDs, id)
	if len(n.straddling) > quadLeafFanout && n.depth < q.maxDepth {
		q.subdivide(n)
	}
}

// subdivide splits a leaf into 2^dim children and redistributes its
// straddling half-spaces.
func (q *QuadIndex) subdivide(n *quadNode) {
	dim := q.dim
	mid := make([]float64, dim)
	for i := range mid {
		mid[i] = (n.lo[i] + n.hi[i]) / 2
	}
	n.children = make([]*quadNode, 0, 1<<dim)
	for mask := 0; mask < 1<<dim; mask++ {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := 0; i < dim; i++ {
			if mask&(1<<i) != 0 {
				lo[i], hi[i] = mid[i], n.hi[i]
			} else {
				lo[i], hi[i] = n.lo[i], mid[i]
			}
		}
		n.children = append(n.children, &quadNode{lo: lo, hi: hi, depth: n.depth + 1})
	}
	straddling, ids := n.straddling, n.strIDs
	n.straddling, n.strIDs = nil, nil
	for i, h := range straddling {
		q.insert(n, ids[i], h)
	}
	q.stats.CellSplits++
}

// MinCount returns the minimum, over all points of the region, of the
// number of inserted half-spaces containing the point. Quads fully resolved
// by covering counts answer directly; quads with residual straddling
// half-spaces are resolved exactly with an embedded binary arrangement.
func (q *QuadIndex) MinCount() int {
	return q.minCount(q.root, 0)
}

func (q *QuadIndex) minCount(n *quadNode, base int) int {
	base += len(n.covering)
	if n.children != nil {
		best := -1
		for _, c := range n.children {
			if v := q.minCount(c, base); best < 0 || v < best {
				best = v
			}
		}
		return best
	}
	if len(n.straddling) == 0 {
		return base
	}
	// Exact residual resolution on the leaf's own box.
	arr, err := New(q.dim, boxHalfspaces(n.lo, n.hi), q.capacity, q.stats)
	if err != nil {
		return base
	}
	for i, h := range n.straddling {
		arr.Insert(n.strIDs[i], h)
	}
	best := -1
	for _, c := range arr.Cells() {
		if best < 0 || c.Count() < best {
			best = c.Count()
		}
	}
	if best < 0 {
		best = 0
	}
	return base + best
}

// CellBelow locates a witness point whose coverage count is strictly below
// the threshold, together with the ids of the half-spaces covering it.
// ok=false means every point of the region is covered by at least threshold
// half-spaces.
func (q *QuadIndex) CellBelow(threshold int) (point []float64, covering bitset.Set, ok bool) {
	return q.cellBelow(q.root, nil, threshold)
}

func (q *QuadIndex) cellBelow(n *quadNode, pathCovering []int, threshold int) ([]float64, bitset.Set, bool) {
	pathCovering = append(pathCovering, n.covering...)
	if len(pathCovering) >= threshold {
		return nil, bitset.Set{}, false
	}
	if n.children != nil {
		for _, c := range n.children {
			if pt, cov, ok := q.cellBelow(c, pathCovering, threshold); ok {
				return pt, cov, ok
			}
		}
		return nil, bitset.Set{}, false
	}
	mkSet := func(extra bitset.Set) bitset.Set {
		s := bitset.New(q.capacity)
		for _, id := range pathCovering {
			s.Set(id)
		}
		if extra.Len() > 0 {
			s.Or(extra)
		}
		return s
	}
	if len(n.straddling) == 0 {
		mid := make([]float64, q.dim)
		for i := range mid {
			mid[i] = (n.lo[i] + n.hi[i]) / 2
		}
		return mid, mkSet(bitset.Set{}), true
	}
	arr, err := New(q.dim, boxHalfspaces(n.lo, n.hi), q.capacity, q.stats)
	if err != nil {
		return nil, bitset.Set{}, false
	}
	for i, h := range n.straddling {
		arr.Insert(n.strIDs[i], h)
	}
	for _, c := range arr.Cells() {
		if len(pathCovering)+c.Count() < threshold {
			return c.Interior(), mkSet(c.Covering()), true
		}
	}
	return nil, bitset.Set{}, false
}

// boxExtremesQuad mirrors geom's box fast path for a raw box.
func boxExtremesQuad(h geom.Halfspace, lo, hi []float64) (mn, mx float64) {
	mn, mx = -h.B, -h.B
	for i, a := range h.A {
		if a >= 0 {
			mn += a * lo[i]
			mx += a * hi[i]
		} else {
			mn += a * hi[i]
			mx += a * lo[i]
		}
	}
	return mn, mx
}

// boxHalfspaces builds the H-representation of a box.
func boxHalfspaces(lo, hi []float64) []geom.Halfspace {
	out := make([]geom.Halfspace, 0, 2*len(lo))
	for i := range lo {
		a := make([]float64, len(lo))
		a[i] = 1
		out = append(out, geom.Halfspace{A: a, B: lo[i]})
		b := make([]float64, len(lo))
		b[i] = -1
		out = append(out, geom.Halfspace{A: b, B: -hi[i]})
	}
	return out
}
