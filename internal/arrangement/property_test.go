package arrangement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// TestCountMonotoneProperty: inserting half-spaces can only grow every
// cell's count, and the minimum count never decreases.
func TestCountMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(3)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range lo {
			lo[i] = 0.1
			hi[i] = 0.1 + 0.2/float64(dim)
		}
		a, err := New(dim, boxHS(lo, hi), 8, nil)
		if err != nil {
			return false
		}
		prevMin := a.MinCount()
		for id := 0; id < 6; id++ {
			h := geom.Halfspace{A: make([]float64, dim)}
			for i := range h.A {
				h.A[i] = rng.NormFloat64()
			}
			mid := make([]float64, dim)
			for i := range mid {
				mid[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			for i := range h.A {
				h.B += h.A[i] * mid[i]
			}
			a.Insert(id, h)
			if mn := a.MinCount(); mn < prevMin {
				return false
			} else {
				prevMin = mn
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCountEqualsCoveringProperty: in every cell, Count() equals the
// cardinality of the covering set, and the covering set only references
// inserted ids.
func TestCountEqualsCoveringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(2)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range lo {
			lo[i] = 0.2
			hi[i] = 0.4
		}
		nHS := 5
		a, err := New(dim, boxHS(lo, hi), nHS, nil)
		if err != nil {
			return false
		}
		for id := 0; id < nHS; id++ {
			h := geom.Halfspace{A: make([]float64, dim), B: rng.NormFloat64() * 0.2}
			for i := range h.A {
				h.A[i] = rng.NormFloat64()
			}
			a.Insert(id, h)
		}
		for _, c := range a.Cells() {
			if c.Count() != c.Covering().Count() {
				return false
			}
			bad := false
			c.Covering().ForEach(func(id int) bool {
				if id >= nHS {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return false
			}
			// The interior point must satisfy every cell constraint.
			for _, h := range c.Constraints() {
				if h.Eval(c.Interior()) < -1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInteriorReuseKeepsSlack: after deep chains of splits, every cell's
// interior point keeps a positive normalized slack against all constraints
// (the parent-interior reuse must not degrade below the tolerance).
func TestInteriorReuseKeepsSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, err := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.5, 0.5}), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 12; id++ {
		h := geom.Halfspace{A: []float64{rng.NormFloat64(), rng.NormFloat64()}}
		h.B = h.A[0]*(0.1+rng.Float64()*0.4) + h.A[1]*(0.1+rng.Float64()*0.4)
		a.Insert(id, h)
	}
	for _, c := range a.Cells() {
		in := c.Interior()
		for _, h := range c.Constraints() {
			norm := 0.0
			for _, v := range h.A {
				norm += v * v
			}
			if norm == 0 {
				continue
			}
			if h.Eval(in) <= 0 {
				t.Fatalf("interior point has non-positive slack %g", h.Eval(in))
			}
		}
	}
}
