package arrangement

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func boxHS(lo, hi []float64) []geom.Halfspace {
	var hs []geom.Halfspace
	for i := range lo {
		a := make([]float64, len(lo))
		a[i] = 1
		hs = append(hs, geom.Halfspace{A: a, B: lo[i]})
		b := make([]float64, len(lo))
		b[i] = -1
		hs = append(hs, geom.Halfspace{A: b, B: -hi[i]})
	}
	return hs
}

func TestNewSingleCell(t *testing.T) {
	a, err := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.4, 0.4}), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells()) != 1 {
		t.Fatalf("want 1 initial cell, got %d", len(a.Cells()))
	}
	c := a.Cells()[0]
	if c.Count() != 0 {
		t.Fatalf("initial count = %d", c.Count())
	}
	if c.Interior() == nil {
		t.Fatal("initial cell must carry an interior point")
	}
}

func TestNewEmptyRegion(t *testing.T) {
	hs := []geom.Halfspace{
		{A: []float64{1, 0}, B: 0.5},
		{A: []float64{-1, 0}, B: -0.4},
	}
	if _, err := New(2, hs, 4, nil); err == nil {
		t.Fatal("empty base region should fail")
	}
}

func TestInsertSplit(t *testing.T) {
	a, _ := New(2, boxHS([]float64{0, 0}, []float64{0.4, 0.4}), 8, nil)
	// w1 ≥ 0.2 cuts the box in two.
	a.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.2})
	cells := a.Cells()
	if len(cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(cells))
	}
	counts := map[int]int{}
	for _, c := range cells {
		counts[c.Count()]++
		in := c.Interior()
		wantCovered := in[0] >= 0.2
		if wantCovered != (c.Count() == 1) {
			t.Fatalf("cell at %v has count %d", in, c.Count())
		}
		if wantCovered != c.Covering().Has(0) {
			t.Fatal("covering set inconsistent with count")
		}
	}
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("count histogram = %v", counts)
	}
}

func TestInsertCoversAndMisses(t *testing.T) {
	a, _ := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.3, 0.3}), 8, nil)
	a.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.0})  // covers whole box
	a.Insert(1, geom.Halfspace{A: []float64{1, 0}, B: 0.9})  // misses whole box
	a.Insert(2, geom.Halfspace{A: []float64{-1, 0}, B: -.3}) // touches at boundary: covers
	cells := a.Cells()
	if len(cells) != 1 {
		t.Fatalf("no split expected, got %d cells", len(cells))
	}
	c := cells[0]
	if c.Count() != 2 || !c.Covering().Has(0) || c.Covering().Has(1) || !c.Covering().Has(2) {
		t.Fatalf("count = %d covering = %v", c.Count(), c.Covering().Indices())
	}
}

func TestInsertTangentNoSplit(t *testing.T) {
	a, _ := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.3, 0.3}), 8, nil)
	// Hyperplane w1 = 0.1 touches the box face: no full-dimensional split.
	a.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.1})
	if len(a.Cells()) != 1 {
		t.Fatalf("tangent insert must not split, got %d cells", len(a.Cells()))
	}
	if a.Cells()[0].Count() != 1 {
		t.Fatalf("tangent covering count = %d, want 1", a.Cells()[0].Count())
	}
}

func TestTrivialHalfspaces(t *testing.T) {
	a, _ := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.3, 0.3}), 8, nil)
	a.Insert(0, geom.Halfspace{A: []float64{0, 0}, B: -1}) // always true
	a.Insert(1, geom.Halfspace{A: []float64{0, 0}, B: 1})  // always false
	c := a.Cells()[0]
	if c.Count() != 1 || !c.Covering().Has(0) || c.Covering().Has(1) {
		t.Fatalf("trivial half-space handling wrong: count=%d", c.Count())
	}
}

// TestCountsAgainstSampling inserts random half-spaces and validates every
// cell's count and covering set at its interior point, plus the partition
// property at random sample points.
func TestCountsAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(3)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range lo {
			lo[i] = 0.05 + rng.Float64()*0.1
			hi[i] = lo[i] + 0.1 + rng.Float64()*0.2/float64(dim)
		}
		nHS := 6
		a, err := New(dim, boxHS(lo, hi), nHS, nil)
		if err != nil {
			t.Fatal(err)
		}
		var inserted []geom.Halfspace
		for id := 0; id < nHS; id++ {
			h := geom.Halfspace{A: make([]float64, dim)}
			for i := range h.A {
				h.A[i] = rng.NormFloat64()
			}
			mid := make([]float64, dim)
			for i := range mid {
				mid[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			h.B = h.Eval(mid) + h.B // set B so the boundary passes near mid
			h.B = 0
			for i := range h.A {
				h.B += h.A[i] * mid[i]
			}
			inserted = append(inserted, h)
			a.Insert(id, h)
		}
		// Validate each cell at its interior point.
		for _, c := range a.Cells() {
			in := c.Interior()
			cnt := 0
			for id, h := range inserted {
				if h.Eval(in) > 0 {
					cnt++
					if !c.Covering().Has(id) {
						t.Fatalf("trial %d: covering set missing half-space %d", trial, id)
					}
				} else if c.Covering().Has(id) {
					t.Fatalf("trial %d: covering set wrongly includes %d (eval=%g)", trial, id, h.Eval(in))
				}
			}
			if cnt != c.Count() {
				t.Fatalf("trial %d: cell count %d but %d half-spaces contain interior", trial, c.Count(), cnt)
			}
		}
		// Partition property: each sample point lies in exactly one cell
		// (up to boundary tolerance).
		for s := 0; s < 200; s++ {
			w := make([]float64, dim)
			for i := range w {
				w[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			// Skip points near any inserted boundary.
			nearBoundary := false
			for _, h := range inserted {
				if e := h.Eval(w); e > -1e-6 && e < 1e-6 {
					nearBoundary = true
					break
				}
			}
			if nearBoundary {
				continue
			}
			hits := 0
			for _, c := range a.Cells() {
				insideAll := true
				for _, h := range c.Constraints() {
					if h.Eval(w) < -1e-7 {
						insideAll = false
						break
					}
				}
				if insideAll {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("trial %d: sample point hit %d cells, want 1", trial, hits)
			}
		}
	}
}

func TestMinCount(t *testing.T) {
	a, _ := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.3, 0.3}), 8, nil)
	if a.MinCount() != 0 {
		t.Fatalf("initial MinCount = %d", a.MinCount())
	}
	a.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.0}) // covers all
	if a.MinCount() != 1 {
		t.Fatalf("MinCount after full cover = %d", a.MinCount())
	}
	a.Insert(1, geom.Halfspace{A: []float64{1, 0}, B: 0.2}) // splits
	if a.MinCount() != 1 {
		t.Fatalf("MinCount after split = %d", a.MinCount())
	}
}

func TestStatsTracked(t *testing.T) {
	st := &Stats{}
	a, _ := New(2, boxHS([]float64{0.1, 0.1}, []float64{0.3, 0.3}), 8, st)
	a.Insert(0, geom.Halfspace{A: []float64{1, 0}, B: 0.2})
	if st.LPCalls == 0 || st.CellSplits != 1 || st.PeakCells != 2 || st.PeakBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
