// Package arrangement implements the disposable half-space arrangement index
// of Section 4.5: cells (partitions) of a convex region are represented
// implicitly by the half-spaces that bound them, organized as the leaves of
// a binary split tree. The index supports incremental half-space insertion,
// per-cell coverage counting, and identification of the covering
// half-spaces — the three operations the RSA/JAA refinement steps use.
//
// Classification of a cell against a new half-space is an exact LP decision
// (minimum and maximum of the functional over the cell), with a witness-point
// cache that answers most straddle cases without touching the solver. Cells
// are kept only when full-dimensional (interior slack above lp.SlackEps), so
// leaves are pairwise disjoint and cover the region up to measure-zero
// boundaries — the same semantics the paper's partitions have.
package arrangement

import (
	"errors"
	"math"

	"repro/internal/bitset"
	"repro/internal/geom"
	"repro/internal/lp"
)

// classEps is the tolerance for deciding that a cell lies entirely on one
// side of a hyperplane.
const classEps = 1e-7

// maxWitnesses caps the per-cell witness cache.
const maxWitnesses = 12

// Stats aggregates work and space counters across arrangements; the
// experiment harness uses them for the paper's space measurements.
type Stats struct {
	LPCalls    int
	CellSplits int
	PeakCells  int
	PeakBytes  int
}

// Cell is a full-dimensional partition of the arrangement's region.
type Cell struct {
	constraints []geom.Halfspace
	covering    bitset.Set
	count       int
	interior    []float64
	witnesses   [][]float64
}

// Count returns how many inserted half-spaces cover the cell.
func (c *Cell) Count() int { return c.count }

// Covering returns the ids of the inserted half-spaces covering the cell.
// The returned set is the cell's own; callers must not modify it.
func (c *Cell) Covering() bitset.Set { return c.covering }

// Interior returns a cached strictly-interior point of the cell.
func (c *Cell) Interior() []float64 { return c.interior }

// Constraints returns the half-spaces bounding the cell (the region's bounds
// plus one side per split hyperplane on the cell's path). Callers must not
// modify the returned slice.
func (c *Cell) Constraints() []geom.Halfspace { return c.constraints }

// Arrangement is a disposable arrangement index over one convex region.
type Arrangement struct {
	dim      int
	cells    []*Cell
	capacity int
	stats    *Stats
	ws       *lp.Workspace
}

// optimize routes the classification LPs through the workspace when one was
// provided (refinement tasks pool one per worker), or the allocating
// package-level solver otherwise.
func (a *Arrangement) optimize(cell []geom.Halfspace, obj []float64, maximize bool) (pt []float64, val float64, ok bool) {
	if a.ws != nil {
		return a.ws.OptimizeLinear(a.dim, cell, obj, maximize)
	}
	return lp.OptimizeLinear(a.dim, cell, obj, maximize)
}

func (a *Arrangement) interiorPoint(cell []geom.Halfspace) (pt []float64, slack float64, ok bool) {
	if a.ws != nil {
		return a.ws.InteriorPoint(a.dim, cell)
	}
	return lp.InteriorPoint(a.dim, cell)
}

// ErrEmptyCell is returned when the base region has no full-dimensional
// interior.
var ErrEmptyCell = errors.New("arrangement: base region is empty or lower-dimensional")

// New creates an arrangement whose single initial cell is the region bounded
// by base. capacity is the exclusive upper bound on half-space ids that will
// be inserted (covering sets are bit sets of that size). stats may be nil.
func New(dim int, base []geom.Halfspace, capacity int, stats *Stats) (*Arrangement, error) {
	return NewWith(dim, base, capacity, stats, nil)
}

// NewWith is New with a reusable LP workspace for every interior-point and
// classification LP the arrangement issues. The workspace must stay owned by
// the calling task for the arrangement's lifetime; results (cell interiors,
// witnesses) never alias it.
func NewWith(dim int, base []geom.Halfspace, capacity int, stats *Stats, ws *lp.Workspace) (*Arrangement, error) {
	if stats == nil {
		stats = &Stats{}
	}
	a := &Arrangement{dim: dim, capacity: capacity, stats: stats, ws: ws}
	stats.LPCalls++
	interior, _, ok := a.interiorPoint(base)
	if !ok {
		return nil, ErrEmptyCell
	}
	cons := make([]geom.Halfspace, len(base))
	for i, h := range base {
		cons[i] = h.Clone()
	}
	root := &Cell{
		constraints: cons,
		covering:    bitset.New(capacity),
		interior:    interior,
		witnesses:   [][]float64{interior},
	}
	a.cells = []*Cell{root}
	a.trackPeak()
	return a, nil
}

// Cells returns the current cells. The slice is owned by the arrangement.
func (a *Arrangement) Cells() []*Cell { return a.cells }

// Stats returns the shared counters.
func (a *Arrangement) Stats() *Stats { return a.stats }

// MinCount returns the smallest coverage count over all cells (0 cells ⇒
// capacity, which acts as +∞ for thresholds up to the id space).
func (a *Arrangement) MinCount() int {
	if len(a.cells) == 0 {
		return a.capacity
	}
	mn := a.cells[0].count
	for _, c := range a.cells[1:] {
		if c.count < mn {
			mn = c.count
		}
	}
	return mn
}

// Insert adds the closed half-space h with the given id, splitting every
// cell the bounding hyperplane properly cuts and incrementing the coverage
// count of cells inside h.
func (a *Arrangement) Insert(id int, h geom.Halfspace) {
	if h.IsTrivial() {
		if h.B <= geom.Eps {
			// Whole-domain half-space: covers everything.
			for _, c := range a.cells {
				c.count++
				c.covering.Set(id)
			}
		}
		return
	}
	out := a.cells[:0:0]
	for _, c := range a.cells {
		out = a.insertIntoCell(out, c, id, h)
	}
	a.cells = out
	a.trackPeak()
}

// insertIntoCell classifies cell c against h and appends the resulting
// cell(s) to out.
func (a *Arrangement) insertIntoCell(out []*Cell, c *Cell, id int, h geom.Halfspace) []*Cell {
	hasPos, hasNeg := false, false
	for _, w := range c.witnesses {
		e := h.Eval(w)
		if e > classEps {
			hasPos = true
		} else if e < -classEps {
			hasNeg = true
		}
		if hasPos && hasNeg {
			break
		}
	}
	if !(hasPos && hasNeg) {
		// Witnesses are inconclusive; resolve with exact extremes. When the
		// witnesses already prove one side is occupied, only the opposite
		// extreme needs the solver.
		if !hasPos {
			a.stats.LPCalls++
			maxPt, mx, ok := a.optimize(c.constraints, h.A, true)
			if !ok {
				return out // defensive: infeasible cells should not exist
			}
			c.addWitness(maxPt)
			if mx-h.B <= classEps {
				return append(out, c) // entirely outside
			}
		}
		if !hasNeg {
			a.stats.LPCalls++
			minPt, mn, ok := a.optimize(c.constraints, h.A, false)
			if !ok {
				return out
			}
			c.addWitness(minPt)
			if mn-h.B >= -classEps {
				c.count++
				c.covering.Set(id)
				return append(out, c) // entirely inside
			}
		}
	}
	// Proper split.
	a.stats.CellSplits++
	neg := h.Negate()
	inside := &Cell{
		constraints: appendConstraint(c.constraints, h),
		covering:    c.covering.Clone(),
		count:       c.count + 1,
	}
	inside.covering.Set(id)
	outside := &Cell{
		constraints: appendConstraint(c.constraints, neg),
		covering:    c.covering,
		count:       c.count,
	}
	for _, w := range c.witnesses {
		e := h.Eval(w)
		if e > classEps {
			inside.witnesses = append(inside.witnesses, w)
		} else if e < -classEps {
			outside.witnesses = append(outside.witnesses, w)
		}
	}
	// The parent's interior point stays a valid interior point of whichever
	// child it lies strictly inside of (the child then contains a ball
	// around it), sparing one max-slack LP.
	norm := l2norm(h.A)
	parentSide := 0.0
	if c.interior != nil && norm > geom.Eps {
		parentSide = h.Eval(c.interior) / norm
	}
	if parentSide > lp.SlackEps {
		inside.interior = c.interior
	} else if parentSide < -lp.SlackEps {
		outside.interior = c.interior
	}
	if inside.interior == nil {
		a.stats.LPCalls++
		if pt, _, ok := a.interiorPoint(inside.constraints); ok {
			inside.interior = pt
			inside.witnesses = append(inside.witnesses, pt)
		}
	}
	if inside.interior == nil {
		// The "inside" part is lower-dimensional: the cell only touches the
		// half-space boundary and stays intact on the outside.
		return append(out, c)
	}
	out = append(out, inside)
	if outside.interior == nil {
		a.stats.LPCalls++
		if pt, _, ok := a.interiorPoint(outside.constraints); ok {
			outside.interior = pt
			outside.witnesses = append(outside.witnesses, pt)
		}
	}
	if outside.interior == nil {
		// Symmetric: the cell is effectively covered in full.
		out = out[:len(out)-1]
		c.count++
		c.covering.Set(id)
		return append(out, c)
	}
	out = append(out, outside)
	return out
}

func l2norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func appendConstraint(cs []geom.Halfspace, h geom.Halfspace) []geom.Halfspace {
	out := make([]geom.Halfspace, len(cs)+1)
	copy(out, cs)
	out[len(cs)] = h
	return out
}

func (c *Cell) addWitness(w []float64) {
	if w == nil || len(c.witnesses) >= maxWitnesses {
		return
	}
	c.witnesses = append(c.witnesses, w)
}

// Bytes estimates the arrangement's memory footprint.
func (a *Arrangement) Bytes() int {
	b := 0
	for _, c := range a.cells {
		b += len(c.constraints) * (a.dim + 1) * 8
		b += (a.capacity + 63) / 64 * 8 // covering bit set
		b += len(c.witnesses) * a.dim * 8
		b += a.dim * 8 // interior
	}
	return b
}

func (a *Arrangement) trackPeak() {
	if n := len(a.cells); n > a.stats.PeakCells {
		a.stats.PeakCells = n
	}
	if b := a.Bytes(); b > a.stats.PeakBytes {
		a.stats.PeakBytes = b
	}
}
