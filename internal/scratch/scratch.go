// Package scratch provides a per-task bump allocator for the transient
// working memory of the refinement algorithms: the bitsets the JAA partition
// recursion and RSA verification clone at every level, the drill probe's
// visited sets, and the LP workspace the arrangement's interior-point and
// clip LPs reuse.
//
// Ownership rules (also documented in the README design note):
//
//   - An Arena belongs to exactly one task (one jaaRegion piece, one RSA
//     worker loop) from Get to Put. It is never shared across goroutines.
//   - Memory handed out by Words lives until Release; Release invalidates
//     every slice the arena ever handed out in this cycle.
//   - Nothing that outlives the task — emitted CellResults, cached graphs,
//     solutions — may alias arena memory. Escaping values are deep-copied at
//     the emit boundary; the -race differential suites exercise parallel
//     decomposition to catch violations.
package scratch

import "sync"

// chunkWords is the minimum chunk size (8 KiB of uint64s). Oversized
// requests get a dedicated chunk.
const chunkWords = 1024

// Arena is a bump allocator over uint64 and int chunks. The zero value is
// ready to use.
type Arena struct {
	chunks [][]uint64
	ci     int // index of the chunk currently being bumped
	off    int // next free word in chunks[ci]

	ichunks [][]int
	ici     int
	ioff    int
}

// Words returns a zeroed slice of n words backed by the arena. The slice is
// valid until Release.
func (a *Arena) Words(n int) []uint64 {
	if n == 0 {
		return nil
	}
	for a.ci < len(a.chunks) {
		c := a.chunks[a.ci]
		if a.off+n <= len(c) {
			w := c[a.off : a.off+n : a.off+n]
			a.off += n
			clear(w)
			return w
		}
		a.ci++
		a.off = 0
	}
	size := chunkWords
	if n > size {
		size = n
	}
	c := make([]uint64, size)
	a.chunks = append(a.chunks, c)
	a.ci = len(a.chunks) - 1
	a.off = n
	return c[0:n:n]
}

// Ints returns a length-zero int slice with capacity n backed by the arena
// (contents are appended by the caller, so no zeroing is needed). The slice
// is valid until Release.
func (a *Arena) Ints(n int) []int {
	if n == 0 {
		return nil
	}
	for a.ici < len(a.ichunks) {
		c := a.ichunks[a.ici]
		if a.ioff+n <= len(c) {
			s := c[a.ioff : a.ioff : a.ioff+n]
			a.ioff += n
			return s
		}
		a.ici++
		a.ioff = 0
	}
	size := chunkWords
	if n > size {
		size = n
	}
	c := make([]int, size)
	a.ichunks = append(a.ichunks, c)
	a.ici = len(a.ichunks) - 1
	a.ioff = n
	return c[0:0:n]
}

// Mark is a rewind point: the arena's bump positions at the time of the
// call.
type Mark struct{ ci, off, ici, ioff int }

// Mark captures the current bump positions. Rewinding to the mark frees
// everything allocated after it.
func (a *Arena) Mark() Mark { return Mark{a.ci, a.off, a.ici, a.ioff} }

// Rewind frees every allocation made since the mark was taken. Recursive
// refinement frames mark on entry and rewind on exit, so the arena's live
// footprint tracks the recursion depth, not the total work.
func (a *Arena) Rewind(m Mark) {
	a.ci, a.off, a.ici, a.ioff = m.ci, m.off, m.ici, m.ioff
}

// Release rewinds the arena: all previously returned slices are up for
// reuse. Chunks are retained, so a released-then-reused arena allocates
// nothing in steady state.
func (a *Arena) Release() {
	a.ci = 0
	a.off = 0
	a.ici = 0
	a.ioff = 0
}

var pool = sync.Pool{New: func() interface{} { return new(Arena) }}

// Get takes a released arena from the process-wide pool (or a fresh one).
func Get() *Arena {
	return pool.Get().(*Arena)
}

// Put releases the arena and returns it to the pool. The caller must not
// touch any memory obtained from it afterwards.
func Put(a *Arena) {
	a.Release()
	pool.Put(a)
}
