package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScoreMatchesFullWeights(t *testing.T) {
	p := []float64{3, 1, 4, 1.5}
	w := []float64{0.2, 0.3, 0.1}
	got := Score(p, w)
	want := ScoreFull(p, FullWeights(w))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %g, ScoreFull = %g", got, want)
	}
}

func TestScoreUniformWeights(t *testing.T) {
	p := []float64{2, 4}
	// w1 = 0.5 ⇒ w2 = 0.5 ⇒ score = 3.
	if got := Score(p, []float64{0.5}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Score = %g, want 3", got)
	}
}

func TestFullWeightsSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.1
			}
			return math.Mod(math.Abs(x), 0.33)
		}
		w := []float64{clamp(a), clamp(b), clamp(c)}
		full := FullWeights(w)
		sum := 0.0
		for _, v := range full {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9 && len(full) == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceWeightsRoundTrip(t *testing.T) {
	w := []float64{0.1, 0.2, 0.3}
	if got := ReduceWeights(FullWeights(w)); len(got) != 3 || got[0] != 0.1 || got[1] != 0.2 || got[2] != 0.3 {
		t.Fatalf("round trip failed: %v", got)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q []float64
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, true},
		{[]float64{2, 1}, []float64{1, 2}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // coincident
		{[]float64{2, 1}, []float64{2, 1}, false},
		{[]float64{2, 1}, []float64{1, 1}, true}, // equal in one dim
		{[]float64{1, 1}, []float64{2, 2}, false},
	}
	for i, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestDominatesAntisymmetric(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		p := []float64{a, b}
		q := []float64{c, d}
		return !(Dominates(p, q) && Dominates(q, p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDualHalfspaceSign is the central property of the dual transform: for
// random records and random weight vectors, the sign of S(q) − S(p) matches
// the side of the half-space DualHalfspace(q, p).
func TestDualHalfspaceSign(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(5)
		p := randRecord(rng, d)
		q := randRecord(rng, d)
		h := DualHalfspace(q, p)
		w := randWeights(rng, d-1)
		diff := Score(q, w) - Score(p, w)
		eval := h.Eval(w)
		if math.Abs(diff-eval) > 1e-9 {
			t.Fatalf("d=%d: S(q)−S(p) = %g but half-space eval = %g", d, diff, eval)
		}
	}
}

func TestDualHalfspaceDominance(t *testing.T) {
	// If q dominates p coordinate-wise, the dual half-space must contain the
	// entire preference domain.
	q := []float64{5, 6, 7}
	p := []float64{1, 2, 3}
	h := DualHalfspace(q, p)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		w := randWeights(rng, 2)
		if !h.Contains(w) {
			t.Fatalf("dominating pair: half-space excludes %v", w)
		}
	}
}

func TestHalfspaceNegate(t *testing.T) {
	h := Halfspace{A: []float64{1, -2}, B: 0.5}
	n := h.Negate()
	w := []float64{0.3, 0.1}
	if math.Abs(h.Eval(w)+n.Eval(w)) > 1e-12 {
		t.Fatalf("negation should flip eval sign: %g vs %g", h.Eval(w), n.Eval(w))
	}
}

func TestHalfspaceTrivial(t *testing.T) {
	if !(Halfspace{A: []float64{0, 0}, B: 1}).IsTrivial() {
		t.Fatal("zero normal should be trivial")
	}
	if (Halfspace{A: []float64{0, 1e-3}, B: 1}).IsTrivial() {
		t.Fatal("non-zero normal should not be trivial")
	}
}

func TestSimplexHalfspaces(t *testing.T) {
	hs := SimplexHalfspaces(3)
	if len(hs) != 4 {
		t.Fatalf("want 4 half-spaces, got %d", len(hs))
	}
	inside := []float64{0.2, 0.3, 0.1}
	outside := []float64{0.5, 0.6, 0.2}
	for _, h := range hs {
		if !h.Contains(inside) {
			t.Fatalf("simplex should contain %v", inside)
		}
	}
	violated := false
	for _, h := range hs {
		if !h.Contains(outside) {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("simplex should exclude %v", outside)
	}
}

func randRecord(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64() * 10
	}
	return p
}

// randWeights samples a reduced weight vector strictly inside the domain.
func randWeights(rng *rand.Rand, dim int) []float64 {
	for {
		w := make([]float64, dim)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64()
			sum += w[i]
		}
		if sum < 0.95 {
			return w
		}
	}
}
