package geom

import "sort"

// OuterBox returns a sound outer bounding box of the region: the
// componentwise extremes of its vertices (exact for convex regions, whose
// extreme points are vertices). Boxes return their own corners.
func (r *Region) OuterBox() (lo, hi []float64) {
	if r.isBox {
		return append([]float64(nil), r.lo...), append([]float64(nil), r.hi...)
	}
	if len(r.vertices) == 0 {
		return nil, nil
	}
	lo = append([]float64(nil), r.vertices[0]...)
	hi = append([]float64(nil), r.vertices[0]...)
	for _, v := range r.vertices[1:] {
		for i, c := range v {
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	return lo, hi
}

// IntersectBoxes returns the componentwise intersection of two boxes, either
// of which may be nil (nil acts as the whole space). The result is nil when
// both inputs are.
func IntersectBoxes(alo, ahi, blo, bhi []float64) (lo, hi []float64) {
	switch {
	case alo == nil:
		return append([]float64(nil), blo...), append([]float64(nil), bhi...)
	case blo == nil:
		return append([]float64(nil), alo...), append([]float64(nil), ahi...)
	}
	lo = make([]float64, len(alo))
	hi = make([]float64, len(ahi))
	for i := range alo {
		lo[i] = alo[i]
		if blo[i] > lo[i] {
			lo[i] = blo[i]
		}
		hi[i] = ahi[i]
		if bhi[i] < hi[i] {
			hi[i] = bhi[i]
		}
	}
	return lo, hi
}

// SplitRegion partitions r into at most n full-dimensional subregions by
// recursive longest-axis bisection: the piece with the longest bounding-box
// side is cut at that side's midpoint by an axis-parallel hyperplane, and the
// two halves are r ∩ {w_a ≥ m} and r ∩ {w_a ≤ m}. The subregions cover r
// exactly (they overlap only in the measure-zero seam hyperplanes), which is
// what makes per-subregion JAA an exact decomposition of the full run.
//
// The second return value lists the seam cuts as the positive-side
// half-space of each distinct cut ({A: e_axis, B: m}); consumers use them to
// recognize — and coalesce — cell fragments that were split purely by a
// seam. Both sides of a cut carry bit-identical ±(A, B), so seam pairs are
// detectable by exact negation.
//
// Regions that cannot be split (n < 2, vertex-only regions without an
// H-representation, or pieces whose halves degenerate numerically) are
// returned as fewer pieces — possibly just {r}. Box regions split into
// boxes; general polytopes split by constraint intersection.
func SplitRegion(r *Region, n int) ([]*Region, []Halfspace) {
	if n < 2 || (!r.isBox && len(r.halfspaces) == 0) {
		return []*Region{r}, nil
	}
	pieces := []*Region{r}
	var seams []Halfspace
	for len(pieces) < n {
		// Pick the splittable piece with the longest bounding-box side.
		best, bestAxis, bestExtent := -1, -1, 0.0
		for i, p := range pieces {
			lo, hi := p.OuterBox()
			if lo == nil {
				continue
			}
			for a := range lo {
				if ext := hi[a] - lo[a]; ext > bestExtent {
					best, bestAxis, bestExtent = i, a, ext
				}
			}
		}
		// Nothing splittable, or every remaining side is numerically too thin
		// to yield two full-dimensional halves.
		if best < 0 || bestExtent < 8*Eps {
			break
		}
		p := pieces[best]
		lo, hi := p.OuterBox()
		mid := (lo[bestAxis] + hi[bestAxis]) / 2
		left, right, ok := splitAt(p, bestAxis, mid)
		if !ok {
			// Degenerate halves: stop splitting this piece by removing it from
			// consideration would complicate bookkeeping; just stop — the
			// callers handle fewer pieces than requested.
			break
		}
		pieces[best] = left
		pieces = append(pieces, right)
		seams = appendSeam(seams, bestAxis, mid, p.Dim())
	}
	// Deterministic order: sort pieces by their bounding-box lower corner so
	// the decomposition — and everything downstream, including the stitched
	// cell order — is independent of the split sequence.
	sort.SliceStable(pieces, func(a, b int) bool {
		alo, _ := pieces[a].OuterBox()
		blo, _ := pieces[b].OuterBox()
		for i := range alo {
			if alo[i] != blo[i] {
				return alo[i] < blo[i]
			}
		}
		return false
	})
	return pieces, seams
}

// splitAt cuts one piece at w[axis] = m, returning the two halves. ok is
// false when either half fails to be full-dimensional.
func splitAt(p *Region, axis int, m float64) (left, right *Region, ok bool) {
	dim := p.Dim()
	if p.isBox {
		lo, hi := p.Bounds()
		llo, lhi := append([]float64(nil), lo...), append([]float64(nil), hi...)
		rlo, rhi := append([]float64(nil), lo...), append([]float64(nil), hi...)
		lhi[axis] = m
		rlo[axis] = m
		l, errL := NewBox(llo, lhi)
		r, errR := NewBox(rlo, rhi)
		if errL != nil || errR != nil {
			return nil, nil, false
		}
		return l, r, true
	}
	pos := Halfspace{A: make([]float64, dim), B: m} // w[axis] ≥ m
	pos.A[axis] = 1
	neg := Halfspace{A: make([]float64, dim), B: -m} // w[axis] ≤ m
	neg.A[axis] = -1
	base := p.Halfspaces()
	l, errL := NewPolytope(dim, append(append([]Halfspace{}, base...), neg))
	r, errR := NewPolytope(dim, append(append([]Halfspace{}, base...), pos))
	if errL != nil || errR != nil {
		return nil, nil, false
	}
	return l, r, true
}

// appendSeam records a distinct cut.
func appendSeam(seams []Halfspace, axis int, m float64, dim int) []Halfspace {
	for _, s := range seams {
		if s.B == m && s.A[axis] == 1 {
			same := true
			for i, a := range s.A {
				if (i == axis) != (a != 0) {
					same = false
					break
				}
			}
			if same {
				return seams
			}
		}
	}
	h := Halfspace{A: make([]float64, dim), B: m}
	h.A[axis] = 1
	return append(seams, h)
}
