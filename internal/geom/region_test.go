package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func mustBox(t *testing.T, lo, hi []float64) *Region {
	t.Helper()
	r, err := NewBox(lo, hi)
	if err != nil {
		t.Fatalf("NewBox(%v, %v): %v", lo, hi, err)
	}
	return r
}

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([]float64{0.1}, []float64{0.1}); !errors.Is(err, ErrEmptyRegion) {
		t.Fatalf("degenerate box should report ErrEmptyRegion, got %v", err)
	}
	if _, err := NewBox([]float64{0.2, 0.2}, []float64{0.1, 0.3}); err == nil {
		t.Fatal("inverted box should fail")
	}
	if _, err := NewBox([]float64{-0.2}, []float64{0.3}); err == nil {
		t.Fatal("negative box should fail")
	}
	if _, err := NewBox([]float64{0.6, 0.6}, []float64{0.9, 0.9}); err == nil {
		t.Fatal("box outside the simplex should fail")
	}
	if _, err := NewBox([]float64{0.1, 0.2}, []float64{0.3}); err == nil {
		t.Fatal("mismatched corners should fail")
	}
}

func TestBoxVerticesAndPivot(t *testing.T) {
	r := mustBox(t, []float64{0.1, 0.2}, []float64{0.3, 0.4})
	vs := r.Vertices()
	if len(vs) != 4 {
		t.Fatalf("want 4 vertices, got %d", len(vs))
	}
	pv := r.Pivot()
	if math.Abs(pv[0]-0.2) > 1e-12 || math.Abs(pv[1]-0.3) > 1e-12 {
		t.Fatalf("pivot = %v, want [0.2 0.3]", pv)
	}
	if !r.Contains(pv) {
		t.Fatal("pivot must be inside the region")
	}
}

func TestBoxContains(t *testing.T) {
	r := mustBox(t, []float64{0.1, 0.1}, []float64{0.3, 0.3})
	if !r.Contains([]float64{0.2, 0.2}) {
		t.Fatal("interior point should be contained")
	}
	if r.Contains([]float64{0.05, 0.2}) {
		t.Fatal("outside point should not be contained")
	}
	if !r.Contains([]float64{0.1, 0.3}) {
		t.Fatal("boundary point should be contained")
	}
}

func TestClassifyBox(t *testing.T) {
	r := mustBox(t, []float64{0.2, 0.2}, []float64{0.4, 0.4})
	cases := []struct {
		h    Halfspace
		want Side
	}{
		{Halfspace{A: []float64{1, 0}, B: 0.1}, Inside},    // w1 ≥ 0.1 covers box
		{Halfspace{A: []float64{1, 0}, B: 0.5}, Outside},   // w1 ≥ 0.5 misses box
		{Halfspace{A: []float64{1, 0}, B: 0.3}, Straddle},  // w1 ≥ 0.3 cuts box
		{Halfspace{A: []float64{-1, 0}, B: -0.4}, Inside},  // w1 ≤ 0.4 covers box (touching)
		{Halfspace{A: []float64{1, 1}, B: 0.81}, Outside},  // sum ≥ 0.81 barely misses
		{Halfspace{A: []float64{1, 1}, B: 0.79}, Straddle}, // sum ≥ 0.79 cuts corner
	}
	for i, c := range cases {
		if got := r.Classify(c.h); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

// TestClassifyAgainstSampling cross-checks Classify against dense point
// sampling inside random boxes.
func TestClassifyAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(4)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range lo {
			lo[i] = rng.Float64() * 0.3 / float64(dim)
			hi[i] = lo[i] + 0.05 + rng.Float64()*0.2/float64(dim)
		}
		r, err := NewBox(lo, hi)
		if err != nil {
			continue
		}
		h := Halfspace{A: make([]float64, dim), B: rng.NormFloat64() * 0.1}
		for i := range h.A {
			h.A[i] = rng.NormFloat64()
		}
		side := r.Classify(h)
		sawIn, sawOut := false, false
		for s := 0; s < 100; s++ {
			w := make([]float64, dim)
			for i := range w {
				w[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			if h.Eval(w) > 1e-7 {
				sawIn = true
			} else if h.Eval(w) < -1e-7 {
				sawOut = true
			}
		}
		switch side {
		case Inside:
			if sawOut {
				t.Fatalf("trial %d: classified Inside but sampled outside point", trial)
			}
		case Outside:
			if sawIn {
				t.Fatalf("trial %d: classified Outside but sampled inside point", trial)
			}
		}
	}
}

func TestNewPolytope(t *testing.T) {
	// Triangle w1 ≥ 0.1, w2 ≥ 0.1, w1 + w2 ≤ 0.5 in 2-dim domain.
	hs := []Halfspace{
		{A: []float64{1, 0}, B: 0.1},
		{A: []float64{0, 1}, B: 0.1},
		{A: []float64{-1, -1}, B: -0.5},
	}
	r, err := NewPolytope(2, hs)
	if err != nil {
		t.Fatalf("NewPolytope: %v", err)
	}
	if len(r.Vertices()) != 3 {
		t.Fatalf("triangle should have 3 vertices, got %d: %v", len(r.Vertices()), r.Vertices())
	}
	if !r.Contains([]float64{0.2, 0.2}) {
		t.Fatal("triangle should contain its centroid area")
	}
	if r.Contains([]float64{0.3, 0.3}) {
		t.Fatal("triangle should exclude points past the diagonal")
	}
	if got := r.Classify(Halfspace{A: []float64{1, 0}, B: 0.05}); got != Inside {
		t.Fatalf("Classify = %v, want Inside", got)
	}
}

func TestNewPolytopeEmpty(t *testing.T) {
	hs := []Halfspace{
		{A: []float64{1, 0}, B: 0.6},
		{A: []float64{-1, 0}, B: -0.4}, // w1 ≤ 0.4 contradicts w1 ≥ 0.6
	}
	if _, err := NewPolytope(2, hs); !errors.Is(err, ErrEmptyRegion) {
		t.Fatalf("want ErrEmptyRegion, got %v", err)
	}
}

func TestNewPolytopeLowerDimensional(t *testing.T) {
	hs := []Halfspace{
		{A: []float64{1, 0}, B: 0.3},
		{A: []float64{-1, 0}, B: -0.3}, // w1 == 0.3 exactly
	}
	if _, err := NewPolytope(2, hs); !errors.Is(err, ErrEmptyRegion) {
		t.Fatalf("want ErrEmptyRegion for a segment, got %v", err)
	}
}

func TestEnumerateVerticesSquare(t *testing.T) {
	hs := []Halfspace{
		{A: []float64{1, 0}, B: 0.1},
		{A: []float64{-1, 0}, B: -0.3},
		{A: []float64{0, 1}, B: 0.1},
		{A: []float64{0, -1}, B: -0.3},
	}
	vs := EnumerateVertices(2, hs)
	if len(vs) != 4 {
		t.Fatalf("square should have 4 vertices, got %d: %v", len(vs), vs)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, ok := SolveLinearSystem(a, b)
	if !ok {
		t.Fatal("system should be solvable")
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x = %v, want [2 1]", x)
	}
	if _, ok := SolveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Fatal("singular system should fail")
	}
}

func TestRegionVerticesInsideHalfspaces(t *testing.T) {
	r := mustBox(t, []float64{0.05, 0.05, 0.05}, []float64{0.25, 0.25, 0.25})
	for _, v := range r.Vertices() {
		for _, h := range r.Halfspaces() {
			if !h.Contains(v) {
				t.Fatalf("vertex %v violates bounding half-space", v)
			}
		}
	}
}
