package geom

import (
	"testing"
)

func TestContainsRegionBoxes(t *testing.T) {
	outer := mustBox(t, []float64{0.1, 0.1}, []float64{0.5, 0.5})
	cases := []struct {
		name  string
		inner *Region
		want  bool
	}{
		{"nested", mustBox(t, []float64{0.2, 0.2}, []float64{0.3, 0.3}), true},
		{"equal", mustBox(t, []float64{0.1, 0.1}, []float64{0.5, 0.5}), true},
		{"shared-edge", mustBox(t, []float64{0.1, 0.2}, []float64{0.3, 0.5}), true},
		{"overlapping", mustBox(t, []float64{0.3, 0.3}, []float64{0.6, 0.6}), false},
		{"disjoint", mustBox(t, []float64{0.55, 0.05}, []float64{0.65, 0.15}), false},
		{"containing", mustBox(t, []float64{0.05, 0.05}, []float64{0.55, 0.55}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := outer.ContainsRegion(tc.inner); got != tc.want {
				t.Errorf("ContainsRegion = %v, want %v", got, tc.want)
			}
		})
	}
	if outer.ContainsRegion(nil) {
		t.Error("nil region reported contained")
	}
	if outer.ContainsRegion(mustBox(t, []float64{0.2, 0.2, 0.2}, []float64{0.3, 0.3, 0.3})) {
		t.Error("dimension mismatch reported contained")
	}
}

func TestContainsRegionPolytopes(t *testing.T) {
	box := mustBox(t, []float64{0.1, 0.1}, []float64{0.4, 0.4})
	// A triangle inside the box: w0 ≥ 0.2, w1 ≥ 0.2, w0+w1 ≤ 0.6.
	tri, err := NewPolytope(2, []Halfspace{
		{A: []float64{1, 0}, B: 0.2},
		{A: []float64{0, 1}, B: 0.2},
		{A: []float64{-1, -1}, B: -0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !box.ContainsRegion(tri) {
		t.Error("box does not contain its inner triangle")
	}
	if tri.ContainsRegion(box) {
		t.Error("triangle claims to contain its bounding box")
	}
	// Box inside a polytope: the simplex-wide polytope contains everything.
	wide, err := NewPolytope(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !wide.ContainsRegion(box) || !wide.ContainsRegion(tri) {
		t.Error("simplex polytope does not contain its subsets")
	}
	// Vertex-only regions cannot certify containment of anything.
	vertsOnly, err := NewPolytopeFromVertices([][]float64{{0, 0}, {0.9, 0}, {0, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if vertsOnly.ContainsRegion(box) {
		t.Error("vertex-only region certified containment without an H-representation")
	}
	// ...but can be certified as contained (classification uses vertices).
	if !wide.ContainsRegion(vertsOnly) {
		t.Error("polytope does not contain the vertex-only triangle")
	}
}

func TestClipConstraints(t *testing.T) {
	r := mustBox(t, []float64{0.2, 0.2}, []float64{0.4, 0.4})
	cell := mustBox(t, []float64{0.1, 0.1}, []float64{0.5, 0.5}).Halfspaces()
	merged := r.ClipConstraints(cell)
	if want := len(cell) + 4; len(merged) != want {
		t.Fatalf("merged %d constraints, want %d", len(merged), want)
	}
	// The merged set bounds exactly the intersection = r here.
	for _, w := range [][]float64{{0.3, 0.3}, {0.2, 0.4}} {
		for _, h := range merged {
			if !h.Contains(w) {
				t.Errorf("point %v inside r violates merged constraint", w)
			}
		}
	}
	outside := []float64{0.15, 0.3} // inside the cell, outside r
	ok := true
	for _, h := range merged {
		if !h.Contains(outside) {
			ok = false
		}
	}
	if ok {
		t.Error("point outside r satisfies all merged constraints")
	}
	// Clipping a cell against its own region adds nothing.
	self := r.ClipConstraints(r.Halfspaces())
	if len(self) != 4 {
		t.Errorf("self-clip has %d constraints, want 4", len(self))
	}
	// The inputs are not mutated.
	if len(cell) != 4 {
		t.Errorf("input slice length changed to %d", len(cell))
	}
}

func TestInteriorBy(t *testing.T) {
	r := mustBox(t, []float64{0.2, 0.2}, []float64{0.4, 0.4})
	if !r.InteriorBy([]float64{0.3, 0.3}, 0.05) {
		t.Error("center not interior by 0.05")
	}
	if r.InteriorBy([]float64{0.21, 0.3}, 0.05) {
		t.Error("near-boundary point interior by 0.05")
	}
	if r.InteriorBy([]float64{0.5, 0.3}, 0.01) {
		t.Error("outside point reported interior")
	}
	tri, err := NewPolytope(2, []Halfspace{{A: []float64{1, 1}, B: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if !tri.InteriorBy([]float64{0.4, 0.4}, 0.01) {
		t.Error("deep polytope point not interior")
	}
	if tri.InteriorBy([]float64{0.2, 0.2}, 0.01) {
		t.Error("boundary polytope point reported interior by margin")
	}
}
