package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Region is a bounded convex polytope in the reduced preference domain. It
// keeps both representations: the bounding half-spaces (H-representation)
// and the defining vertices (V-representation). Boxes — the common case in
// the paper's experiments — carry a fast path for classification.
type Region struct {
	dim        int
	halfspaces []Halfspace
	vertices   [][]float64
	isBox      bool
	lo, hi     []float64
	pivot      []float64
}

// ErrEmptyRegion is returned when a requested region has no full-dimensional
// interior.
var ErrEmptyRegion = errors.New("geom: region is empty or lower-dimensional")

// NewBox builds an axis-parallel hyper-rectangle [lo, hi] in the reduced
// preference domain. It validates that the box is full-dimensional and lies
// inside the domain (all weights non-negative, sum at most one).
func NewBox(lo, hi []float64) (*Region, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("geom: box corner dimensions differ: %d vs %d", len(lo), len(hi))
	}
	dim := len(lo)
	if dim == 0 {
		return nil, errors.New("geom: zero-dimensional box")
	}
	sumLo := 0.0
	for i := range lo {
		if hi[i]-lo[i] < Eps {
			return nil, fmt.Errorf("geom: box side %d is empty: [%g, %g]: %w", i, lo[i], hi[i], ErrEmptyRegion)
		}
		if lo[i] < -Eps {
			return nil, fmt.Errorf("geom: box extends below zero in dimension %d", i)
		}
		sumLo += lo[i]
	}
	if sumLo >= 1-Eps {
		return nil, fmt.Errorf("geom: box lies outside the weight simplex (Σ lo = %g ≥ 1)", sumLo)
	}
	r := &Region{
		dim:   dim,
		isBox: true,
		lo:    append([]float64(nil), lo...),
		hi:    append([]float64(nil), hi...),
	}
	for i := 0; i < dim; i++ {
		aLo := make([]float64, dim)
		aLo[i] = 1
		aHi := make([]float64, dim)
		aHi[i] = -1
		r.halfspaces = append(r.halfspaces, Halfspace{A: aLo, B: lo[i]}, Halfspace{A: aHi, B: -hi[i]})
	}
	r.vertices = boxVertices(lo, hi)
	r.computePivot()
	return r, nil
}

// NewPolytope builds a general convex region from bounding half-spaces. The
// vertices are enumerated exactly (intersections of dim-subsets of the
// bounding hyperplanes, kept when feasible); the construction is intended
// for the low-dimensional regions the paper targets. The half-spaces of the
// preference-domain simplex are added implicitly so the region is always
// bounded.
func NewPolytope(dim int, halfspaces []Halfspace) (*Region, error) {
	if dim <= 0 {
		return nil, errors.New("geom: non-positive dimension")
	}
	all := make([]Halfspace, 0, len(halfspaces)+dim+1)
	for _, h := range halfspaces {
		if len(h.A) != dim {
			return nil, fmt.Errorf("geom: half-space dimension %d does not match region dimension %d", len(h.A), dim)
		}
		all = append(all, h.Clone())
	}
	all = append(all, SimplexHalfspaces(dim)...)
	// Exact duplicates change nothing geometrically and would otherwise
	// accumulate when regions are built from other regions' half-space lists
	// (recursive splitting re-adds the simplex rows each level).
	dedup := all[:0]
	for _, h := range all {
		seen := false
		for _, have := range dedup {
			if sameHalfspace(have, h) {
				seen = true
				break
			}
		}
		if !seen {
			dedup = append(dedup, h)
		}
	}
	all = dedup
	verts := EnumerateVertices(dim, all)
	if len(verts) <= dim {
		return nil, ErrEmptyRegion
	}
	r := &Region{dim: dim, halfspaces: all, vertices: verts}
	r.computePivot()
	// Reject lower-dimensional regions: all vertices on a common hyperplane.
	if r.volumeProxy() < Eps {
		return nil, ErrEmptyRegion
	}
	return r, nil
}

// NewPolytopeFromVertices builds a convex region as the hull of the given
// vertex set. The H-representation is derived for boxes only; general
// vertex-only regions keep an empty half-space list and rely on vertex-based
// classification, which is exact for convex hulls.
func NewPolytopeFromVertices(vertices [][]float64) (*Region, error) {
	if len(vertices) == 0 {
		return nil, ErrEmptyRegion
	}
	dim := len(vertices[0])
	vs := make([][]float64, len(vertices))
	for i, v := range vertices {
		if len(v) != dim {
			return nil, fmt.Errorf("geom: vertex %d has dimension %d, want %d", i, len(v), dim)
		}
		vs[i] = append([]float64(nil), v...)
	}
	r := &Region{dim: dim, vertices: vs}
	r.computePivot()
	return r, nil
}

// Dim returns the dimensionality of the preference domain the region lives
// in (d−1 for d-dimensional data).
func (r *Region) Dim() int { return r.dim }

// IsBox reports whether the region is an axis-parallel box.
func (r *Region) IsBox() bool { return r.isBox }

// Bounds returns the box corners, or nil if the region is not a box.
func (r *Region) Bounds() (lo, hi []float64) {
	if !r.isBox {
		return nil, nil
	}
	return append([]float64(nil), r.lo...), append([]float64(nil), r.hi...)
}

// HasHRep reports whether the region carries an H-representation (bounding
// half-spaces). Regions built from vertices alone do not; geometric
// operations that clip or intersect by half-space (cell clipping) must
// refuse them rather than silently clip against nothing.
func (r *Region) HasHRep() bool { return len(r.halfspaces) > 0 }

// Halfspaces returns the bounding half-spaces (a copy).
func (r *Region) Halfspaces() []Halfspace {
	out := make([]Halfspace, len(r.halfspaces))
	for i, h := range r.halfspaces {
		out[i] = h.Clone()
	}
	return out
}

// Vertices returns the defining vertices (a copy).
func (r *Region) Vertices() [][]float64 {
	out := make([][]float64, len(r.vertices))
	for i, v := range r.vertices {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// Pivot returns the pivot vector of the region: the per-dimension average of
// its vertices. Convexity guarantees the pivot lies inside the region; the
// r-skyband search and anchor selection use it as the representative weight
// vector.
func (r *Region) Pivot() []float64 {
	return append([]float64(nil), r.pivot...)
}

// Contains reports whether the reduced weight vector w lies in the region.
func (r *Region) Contains(w []float64) bool {
	if r.isBox {
		for i := range w {
			if w[i] < r.lo[i]-Eps || w[i] > r.hi[i]+Eps {
				return false
			}
		}
		return true
	}
	if len(r.halfspaces) > 0 {
		for _, h := range r.halfspaces {
			if !h.Contains(w) {
				return false
			}
		}
		return true
	}
	// Vertex-only region: fall back to an approximate test via the support
	// function is not exact; regions built from vertices alone are only used
	// where Classify suffices.
	panic("geom: Contains on vertex-only region without H-representation")
}

// ContainsRegion reports whether other ⊆ r. The test is exact for convex
// regions (up to the global Eps tolerance): other is contained iff it lies
// inside every bounding half-space of r, and Classify decides each of those
// by the vertex extremes of the linear functional. A region without an
// H-representation (built from vertices only) cannot certify containment of
// anything and reports false.
func (r *Region) ContainsRegion(other *Region) bool {
	if other == nil || r.dim != other.dim {
		return false
	}
	if r.isBox && other.isBox {
		for i := range r.lo {
			if other.lo[i] < r.lo[i]-Eps || other.hi[i] > r.hi[i]+Eps {
				return false
			}
		}
		return true
	}
	if len(r.halfspaces) == 0 {
		return false
	}
	for _, h := range r.halfspaces {
		if other.Classify(h) != Inside {
			return false
		}
	}
	return true
}

// ClipConstraints returns a half-space set bounding cons ∩ r: the input
// constraints followed by r's bounding half-spaces, with exact duplicates
// dropped (clipping a cell to the region it was carved from must not grow
// the constraint list). The input slices are not modified; the result is a
// fresh slice sharing the individual half-spaces.
func (r *Region) ClipConstraints(cons []Halfspace) []Halfspace {
	out := make([]Halfspace, 0, len(cons)+len(r.halfspaces))
	out = append(out, cons...)
	for _, h := range r.halfspaces {
		dup := false
		for _, have := range cons {
			if sameHalfspace(have, h) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}

// sameHalfspace reports bit-exact equality of two half-spaces.
func sameHalfspace(a, b Halfspace) bool {
	if len(a.A) != len(b.A) || a.B != b.B {
		return false
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			return false
		}
	}
	return true
}

// InteriorBy reports whether w lies at least margin inside the region:
// every bounding half-space is satisfied with slack ≥ margin·‖A‖ (the same
// normalized-slack measure the LP interior-point test uses), so a ball of
// radius margin around w stays inside. Regions without an H-representation
// report false.
func (r *Region) InteriorBy(w []float64, margin float64) bool {
	if r.isBox {
		for i := range w {
			if w[i] < r.lo[i]+margin || w[i] > r.hi[i]-margin {
				return false
			}
		}
		return true
	}
	if len(r.halfspaces) == 0 {
		return false
	}
	for _, h := range r.halfspaces {
		norm := 0.0
		for _, a := range h.A {
			norm += a * a
		}
		norm = math.Sqrt(norm)
		if norm <= Eps {
			if h.B > Eps {
				return false
			}
			continue
		}
		if h.Eval(w) < margin*norm {
			return false
		}
	}
	return true
}

// ConstraintBounds computes a sound outer bounding box of the polytope
// ∩{A_i·w ≥ B_i} by interval constraint propagation: each constraint, given
// current bounds on the other coordinates, implies a one-sided bound on each
// coordinate it mentions, and a few passes let bounds sharpen each other.
// The result always CONTAINS the polytope (it is generally not tight), which
// is exactly what sound containment/disjointness pre-tests need. ok is false
// when some coordinate stays unbounded — callers then skip the box-based
// fast paths. Cost is O(passes·m·dim), no LP.
func ConstraintBounds(dim int, cons []Halfspace, passes int) (lo, hi []float64, ok bool) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for i := range lo {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	for p := 0; p < passes; p++ {
		improved := false
		for _, h := range cons {
			for i, ai := range h.A {
				if ai > Eps {
					// a_i·w_i ≥ B − Σ_{j≠i} max(a_j·w_j)
					rest, bounded := maxRest(h.A, lo, hi, i)
					if !bounded {
						continue
					}
					if b := (h.B - rest) / ai; b > lo[i]+Eps {
						lo[i] = b
						improved = true
					}
				} else if ai < -Eps {
					rest, bounded := maxRest(h.A, lo, hi, i)
					if !bounded {
						continue
					}
					if b := (h.B - rest) / ai; b < hi[i]-Eps {
						hi[i] = b
						improved = true
					}
				}
			}
		}
		if !improved {
			break // fixed point: further passes cannot tighten anything
		}
	}
	for i := range lo {
		if math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// maxRest returns the maximum of Σ_{j≠skip} a_j·w_j over the current bounds,
// reporting bounded=false when a participating coordinate is unbounded in
// the needed direction.
func maxRest(a, lo, hi []float64, skip int) (float64, bool) {
	s := 0.0
	for j, aj := range a {
		if j == skip || aj == 0 {
			continue
		}
		if aj > 0 {
			if math.IsInf(hi[j], 1) {
				return 0, false
			}
			s += aj * hi[j]
		} else {
			if math.IsInf(lo[j], -1) {
				return 0, false
			}
			s += aj * lo[j]
		}
	}
	return s, true
}

// ClassifyBox positions the axis-parallel box [lo, hi] relative to the
// region: Inside when the box (and so anything it contains) lies in the
// region, Outside when the box misses the region's interior entirely, and
// Straddle otherwise. Exact up to the global Eps tolerance, O(m·dim).
func (r *Region) ClassifyBox(lo, hi []float64) Side {
	if len(r.halfspaces) == 0 {
		return Straddle
	}
	inside := true
	for _, h := range r.halfspaces {
		mn, mx := boxExtremes(h, lo, hi)
		if mx <= Eps {
			return Outside // the box never enters this half-space's interior
		}
		if mn < -Eps {
			inside = false
		}
	}
	if inside {
		return Inside
	}
	return Straddle
}

// Classify positions the region relative to the closed half-space h. The
// test is exact for convex regions: the minimum and maximum of the linear
// functional over the region are attained at vertices.
func (r *Region) Classify(h Halfspace) Side {
	if r.isBox {
		lo, hi := boxExtremes(h, r.lo, r.hi)
		return sideFromExtremes(lo, hi)
	}
	lo := math.Inf(1)
	hi := math.Inf(-1)
	for _, v := range r.vertices {
		e := h.Eval(v)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return sideFromExtremes(lo, hi)
}

// DominatesOver reports whether record p's score is at least record q's over
// the entire region, with a strict advantage somewhere — the r-dominance
// test of the paper's Definition 1. It is the allocation-free equivalent of
// Classify(DualHalfspace(p, q)) == Inside, the innermost operation of the
// filtering step, and follows the same accumulation order so verdicts match
// bit for bit.
func (r *Region) DominatesOver(p, q []float64) bool {
	d := len(p)
	pd, qd := p[d-1], q[d-1]
	negB := pd - qd // −B of the dual half-space
	trivial := true
	if r.isBox {
		// Single pass: accumulate the box minimum of the dual functional and
		// detect the all-zero normal along the way.
		mn := negB
		for i := 0; i < d-1; i++ {
			a := (p[i] - pd) - (q[i] - qd)
			if a >= 0 {
				if a > Eps {
					trivial = false
				}
				mn += a * r.lo[i]
			} else {
				if a < -Eps {
					trivial = false
				}
				mn += a * r.hi[i]
			}
		}
		if trivial {
			// Equal scores everywhere up to the constant term: p r-dominates
			// q only when it is strictly better by that constant.
			return negB > Eps
		}
		return mn >= -Eps
	}
	for i := 0; i < d-1; i++ {
		if a := (p[i] - pd) - (q[i] - qd); a > Eps || a < -Eps {
			trivial = false
			break
		}
	}
	if trivial {
		return negB > Eps
	}
	mn := math.Inf(1)
	for _, v := range r.vertices {
		e := negB
		for i := 0; i < d-1; i++ {
			e += ((p[i] - pd) - (q[i] - qd)) * v[i]
		}
		if e < mn {
			mn = e
		}
	}
	return mn >= -Eps
}

// ScoreRange returns the minimum and maximum score of record p over the
// region. Both extremes of the linear functional are attained at vertices;
// boxes use the O(dim) per-coordinate sign rule instead.
func (r *Region) ScoreRange(p []float64) (mn, mx float64) {
	d := len(p)
	pd := p[d-1]
	if r.isBox {
		mn, mx = pd, pd
		for i := 0; i < d-1; i++ {
			a := p[i] - pd
			if a >= 0 {
				mn += a * r.lo[i]
				mx += a * r.hi[i]
			} else {
				mn += a * r.hi[i]
				mx += a * r.lo[i]
			}
		}
		return mn, mx
	}
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range r.vertices {
		s := pd
		for i := 0; i < d-1; i++ {
			s += (p[i] - pd) * v[i]
		}
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	return mn, mx
}

// MinScore returns only the minimum score of record p over the region. It
// follows the exact accumulation order of ScoreRange so the value matches
// bit for bit, while skipping the half of the work ScoreRange spends on the
// other extreme — the skyband filter's accept test needs only this side.
func (r *Region) MinScore(p []float64) float64 {
	d := len(p)
	pd := p[d-1]
	if r.isBox {
		mn := pd
		for i := 0; i < d-1; i++ {
			a := p[i] - pd
			if a >= 0 {
				mn += a * r.lo[i]
			} else {
				mn += a * r.hi[i]
			}
		}
		return mn
	}
	mn := math.Inf(1)
	for _, v := range r.vertices {
		s := pd
		for i := 0; i < d-1; i++ {
			s += (p[i] - pd) * v[i]
		}
		if s < mn {
			mn = s
		}
	}
	return mn
}

// MaxScore is the upper-extreme counterpart of MinScore, used by the prune
// test of the skyband filter. Same bit-identical accumulation order as
// ScoreRange.
func (r *Region) MaxScore(p []float64) float64 {
	d := len(p)
	pd := p[d-1]
	if r.isBox {
		mx := pd
		for i := 0; i < d-1; i++ {
			a := p[i] - pd
			if a >= 0 {
				mx += a * r.hi[i]
			} else {
				mx += a * r.lo[i]
			}
		}
		return mx
	}
	mx := math.Inf(-1)
	for _, v := range r.vertices {
		s := pd
		for i := 0; i < d-1; i++ {
			s += (p[i] - pd) * v[i]
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// sideFromExtremes converts the [min, max] range of A·w − B over a region
// into a Side. A region whose maximum is within tolerance of zero only
// touches the boundary and counts as Outside; symmetrically for Inside.
func sideFromExtremes(lo, hi float64) Side {
	if lo >= -Eps {
		return Inside
	}
	if hi <= Eps {
		return Outside
	}
	return Straddle
}

// BoxExtremes returns the minimum and maximum of h.Eval over the box
// [lo, hi] — the exported form of the corner-sign rule for callers (cell
// clipping) that classify half-spaces against constraint-propagated bounds.
func BoxExtremes(h Halfspace, lo, hi []float64) (mn, mx float64) {
	return boxExtremes(h, lo, hi)
}

// boxExtremes returns the minimum and maximum of h.Eval over the box
// [lo, hi] in O(dim) by picking the corner per coefficient sign.
func boxExtremes(h Halfspace, lo, hi []float64) (mn, mx float64) {
	mn, mx = -h.B, -h.B
	for i, a := range h.A {
		if a >= 0 {
			mn += a * lo[i]
			mx += a * hi[i]
		} else {
			mn += a * hi[i]
			mx += a * lo[i]
		}
	}
	return mn, mx
}

func (r *Region) computePivot() {
	p := make([]float64, r.dim)
	for _, v := range r.vertices {
		for i := range p {
			p[i] += v[i]
		}
	}
	n := float64(len(r.vertices))
	if n > 0 {
		for i := range p {
			p[i] /= n
		}
	}
	r.pivot = p
}

// volumeProxy returns a cheap lower-bound proxy for full-dimensionality: the
// product over dimensions of the vertex spread. Zero spread in any dimension
// means the polytope is degenerate only if it is axis-aligned; combined with
// the rank test below it is sufficient for validation purposes.
func (r *Region) volumeProxy() float64 {
	if len(r.vertices) == 0 {
		return 0
	}
	// Rank of the vertex-difference matrix must be dim for a full-dimensional
	// polytope.
	base := r.vertices[0]
	rows := make([][]float64, 0, len(r.vertices)-1)
	for _, v := range r.vertices[1:] {
		row := make([]float64, r.dim)
		for i := range row {
			row[i] = v[i] - base[i]
		}
		rows = append(rows, row)
	}
	if matrixRank(rows, r.dim) < r.dim {
		return 0
	}
	return 1
}

// boxVertices enumerates the 2^dim corners of a box.
func boxVertices(lo, hi []float64) [][]float64 {
	dim := len(lo)
	n := 1 << dim
	out := make([][]float64, 0, n)
	for mask := 0; mask < n; mask++ {
		v := make([]float64, dim)
		for i := 0; i < dim; i++ {
			if mask&(1<<i) != 0 {
				v[i] = hi[i]
			} else {
				v[i] = lo[i]
			}
		}
		out = append(out, v)
	}
	return out
}

// EnumerateVertices computes the vertices of the polytope ∩{A_i·w ≥ B_i} by
// solving every dim-subset of boundary hyperplanes and keeping feasible
// intersection points. Complexity is O(C(m, dim)·m·dim), which is fine for
// the small m and dim the preference domain uses.
func EnumerateVertices(dim int, halfspaces []Halfspace) [][]float64 {
	var verts [][]float64
	idx := make([]int, dim)
	var rec func(start, depth int)
	a := make([][]float64, dim)
	b := make([]float64, dim)
	rec = func(start, depth int) {
		if depth == dim {
			for i, j := range idx {
				a[i] = halfspaces[j].A
				b[i] = halfspaces[j].B
			}
			x, ok := SolveLinearSystem(a, b)
			if !ok {
				return
			}
			for _, h := range halfspaces {
				if h.Eval(x) < -1e-7 {
					return
				}
			}
			verts = append(verts, x)
			return
		}
		for i := start; i < len(halfspaces); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	if dim <= len(halfspaces) {
		rec(0, 0)
	}
	return dedupePoints(verts)
}

// dedupePoints removes near-duplicate points (within 1e-7 per coordinate).
func dedupePoints(pts [][]float64) [][]float64 {
	if len(pts) <= 1 {
		return pts
	}
	sort.Slice(pts, func(i, j int) bool {
		for k := range pts[i] {
			if pts[i][k] != pts[j][k] {
				return pts[i][k] < pts[j][k]
			}
		}
		return false
	})
	out := pts[:1]
	for _, p := range pts[1:] {
		last := out[len(out)-1]
		same := true
		for k := range p {
			if math.Abs(p[k]-last[k]) > 1e-7 {
				same = false
				break
			}
		}
		if !same {
			out = append(out, p)
		}
	}
	return out
}

// SolveLinearSystem solves the square system a·x = b by Gaussian elimination
// with partial pivoting. It reports ok=false for (near-)singular systems.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		pivVal := m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / pivVal
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

// matrixRank returns the rank of the given row set over `cols` columns,
// computed by Gaussian elimination with a fixed tolerance.
func matrixRank(rows [][]float64, cols int) int {
	m := make([][]float64, len(rows))
	for i, r := range rows {
		m[i] = append([]float64(nil), r...)
	}
	rank := 0
	for col := 0; col < cols && rank < len(m); col++ {
		piv := -1
		for r := rank; r < len(m); r++ {
			if math.Abs(m[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			continue
		}
		m[rank], m[piv] = m[piv], m[rank]
		for r := 0; r < len(m); r++ {
			if r == rank {
				continue
			}
			f := m[r][col] / m[rank][col]
			if f == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				m[r][c] -= f * m[rank][c]
			}
		}
		rank++
	}
	return rank
}
