// Package geom provides the geometric primitives used throughout the UTK
// library: scores and dominance over d-dimensional records, the reduced
// (d−1)-dimensional preference domain, half-spaces induced by record pairs,
// and convex regions (boxes and general polytopes) with the classification
// predicates the r-dominance machinery relies on.
//
// Conventions. Records live in the d-dimensional data domain and higher
// attribute values are preferable. Weight vectors live in the reduced
// preference domain: a vector w = (w_1, ..., w_{d−1}) with w_i ≥ 0 and
// Σ w_i ≤ 1 stands for the full vector (w_1, ..., w_{d−1}, 1 − Σ w_i).
// All half-spaces are closed sets of the form {w : A·w ≥ B}.
package geom

import (
	"fmt"
	"math"
)

// Eps is the global numeric tolerance for geometric predicates. Values whose
// magnitude is below Eps are treated as zero.
const Eps = 1e-9

// Score returns the full weighted sum Σ w_i·x_i of record p for a reduced
// weight vector w of length len(p)−1. The implicit last weight is
// 1 − Σ w_i.
func Score(p []float64, w []float64) float64 {
	d := len(p)
	last := p[d-1]
	s := last
	for i, wi := range w {
		s += wi * (p[i] - last)
	}
	return s
}

// ScoreFull returns Σ w_i·x_i for a full d-dimensional weight vector.
func ScoreFull(p, w []float64) float64 {
	var s float64
	for i, wi := range w {
		s += wi * p[i]
	}
	return s
}

// FullWeights expands a reduced weight vector to its d-dimensional form by
// appending the implicit last weight 1 − Σ w_i.
func FullWeights(w []float64) []float64 {
	full := make([]float64, len(w)+1)
	sum := 0.0
	for i, wi := range w {
		full[i] = wi
		sum += wi
	}
	full[len(w)] = 1 - sum
	return full
}

// ReduceWeights drops the last coordinate of a full weight vector, returning
// the reduced form used by the preference domain. The caller is responsible
// for the vector summing to one.
func ReduceWeights(full []float64) []float64 {
	w := make([]float64, len(full)-1)
	copy(w, full)
	return w
}

// Dominates reports whether record p dominates record q in the traditional
// sense: p is no smaller than q in every dimension and strictly larger in at
// least one.
func Dominates(p, q []float64) bool {
	strict := false
	for i := range p {
		if p[i] < q[i]-Eps {
			return false
		}
		if p[i] > q[i]+Eps {
			strict = true
		}
	}
	return strict
}

// Halfspace is the closed half-space {w : A·w ≥ B} in the reduced preference
// domain.
type Halfspace struct {
	A []float64
	B float64
}

// Eval returns A·w − B; the point w lies inside the half-space when the
// result is ≥ 0 (up to tolerance).
func (h Halfspace) Eval(w []float64) float64 {
	s := -h.B
	for i, a := range h.A {
		s += a * w[i]
	}
	return s
}

// Contains reports whether w lies inside the closed half-space, with
// tolerance Eps.
func (h Halfspace) Contains(w []float64) bool {
	return h.Eval(w) >= -Eps
}

// Negate returns the complementary closed half-space {w : A·w ≤ B},
// represented as {w : (−A)·w ≥ −B}. The shared boundary hyperplane belongs
// to both; cells built from negations are treated as open up to measure-zero
// boundaries.
func (h Halfspace) Negate() Halfspace {
	a := make([]float64, len(h.A))
	for i, v := range h.A {
		a[i] = -v
	}
	return Halfspace{A: a, B: -h.B}
}

// Clone returns a deep copy of the half-space.
func (h Halfspace) Clone() Halfspace {
	a := make([]float64, len(h.A))
	copy(a, h.A)
	return Halfspace{A: a, B: h.B}
}

// IsTrivial reports whether the half-space has an (effectively) zero normal
// vector. A trivial half-space is either the whole domain (B ≤ 0) or empty
// (B > 0).
func (h Halfspace) IsTrivial() bool {
	for _, a := range h.A {
		if math.Abs(a) > Eps {
			return false
		}
	}
	return true
}

// DualHalfspace maps the ordered record pair (q, p) to the half-space of the
// reduced preference domain where S(q) ≥ S(p). This is the fundamental
// transform of the paper: each competitor q of a candidate p contributes the
// half-space where q outscores p.
func DualHalfspace(q, p []float64) Halfspace {
	d := len(p)
	a := make([]float64, d-1)
	for i := 0; i < d-1; i++ {
		a[i] = (q[i] - q[d-1]) - (p[i] - p[d-1])
	}
	return Halfspace{A: a, B: p[d-1] - q[d-1]}
}

// Side is the result of classifying a convex region against a half-space.
type Side int

const (
	// Inside means the region is entirely contained in the half-space.
	Inside Side = iota
	// Outside means the region is entirely outside the half-space interior
	// (it may touch the boundary hyperplane).
	Outside
	// Straddle means the hyperplane properly cuts the region.
	Straddle
)

func (s Side) String() string {
	switch s {
	case Inside:
		return "inside"
	case Outside:
		return "outside"
	case Straddle:
		return "straddle"
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// SimplexHalfspaces returns the half-spaces bounding the reduced preference
// domain itself: w_i ≥ 0 for each axis and Σ w_i ≤ 1.
func SimplexHalfspaces(dim int) []Halfspace {
	hs := make([]Halfspace, 0, dim+1)
	for i := 0; i < dim; i++ {
		a := make([]float64, dim)
		a[i] = 1
		hs = append(hs, Halfspace{A: a, B: 0})
	}
	a := make([]float64, dim)
	for i := range a {
		a[i] = -1
	}
	hs = append(hs, Halfspace{A: a, B: -1})
	return hs
}
