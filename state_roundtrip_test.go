package utk

import (
	"context"
	"fmt"
	"sort"
	"testing"
)

// stateAnswers canonicalizes an engine's UTK1/UTK2 answers for equality
// checks across an export/restore cycle.
func stateAnswers(t *testing.T, e *Engine, r *Region) string {
	t.Helper()
	q := Query{K: 3, Region: r}
	r1, err := e.UTK1(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ids := append([]int(nil), r1.Records...)
	sort.Ints(ids)
	r2, err := e.UTK2(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("utk1=%v utk2=%v", ids, cellSets(r2.Cells))
}

// TestEngineStateRoundtrip exports a mutated engine's state and restores it
// into a fresh engine: answers, epoch, and live population must match, and
// both engines must evolve identically under further updates.
func TestEngineStateRoundtrip(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds, r := facadeFixture(t)
			cfg := EngineConfig{MaxK: 6, ShadowDepth: 2}
			var e *Engine
			var err error
			if shards > 1 {
				e, err = ds.NewShardedEngine(shards, cfg)
			} else {
				e, err = ds.NewEngine(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			ops := []UpdateOp{
				{Kind: UpdateInsert, Record: []float64{0.95, 0.9, 0.85}},
				{Kind: UpdateDelete, ID: 17},
				{Kind: UpdateInsert, Record: []float64{0.2, 0.8, 0.4}},
			}
			if _, err := e.ApplyBatch(ops); err != nil {
				t.Fatal(err)
			}

			st, err := e.State()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreEngine(st, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Dim() != e.Dim() || restored.Shards() != e.Shards() || restored.MaxK() != e.MaxK() {
				t.Fatalf("restored shape dim=%d shards=%d maxk=%d, want %d/%d/%d",
					restored.Dim(), restored.Shards(), restored.MaxK(), e.Dim(), e.Shards(), e.MaxK())
			}
			es, rs := e.Stats(), restored.Stats()
			if es.Epoch != rs.Epoch || es.Live != rs.Live || es.SupersetSize != rs.SupersetSize {
				t.Fatalf("restored stats epoch=%d live=%d superset=%d, want %d/%d/%d",
					rs.Epoch, rs.Live, rs.SupersetSize, es.Epoch, es.Live, es.SupersetSize)
			}
			if got, want := stateAnswers(t, restored, r), stateAnswers(t, e, r); got != want {
				t.Fatalf("restored answers %s, want %s", got, want)
			}

			// Further updates must keep the two engines in lockstep: same
			// assigned ids, same epochs, same answers.
			more := []UpdateOp{
				{Kind: UpdateInsert, Record: []float64{0.7, 0.7, 0.7}},
				{Kind: UpdateDelete, ID: 3},
			}
			res1, err := e.ApplyBatch(more)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := restored.ApplyBatch(more)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(res1.IDs) != fmt.Sprint(res2.IDs) || res1.Epoch != res2.Epoch {
				t.Fatalf("post-restore update diverged: ids %v/%v epoch %d/%d", res1.IDs, res2.IDs, res1.Epoch, res2.Epoch)
			}
			if got, want := stateAnswers(t, restored, r), stateAnswers(t, e, r); got != want {
				t.Fatalf("post-restore answers %s, want %s", got, want)
			}
		})
	}
}

// TestRestoreEngineRejectsBadState exercises the validation surface.
func TestRestoreEngineRejectsBadState(t *testing.T) {
	ds, _ := facadeFixture(t)
	e, err := ds.NewEngine(EngineConfig{MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(&EngineState{}, EngineConfig{MaxK: 4}); err == nil {
		t.Fatal("empty state accepted")
	}
	if _, err := RestoreEngine(st, EngineConfig{MaxK: 9}); err == nil {
		t.Fatal("MaxK mismatch accepted")
	}
	// Duplicate live id must be rejected.
	bad := *st.Single
	badDyn := *bad.Dyn
	badDyn.LiveIDs = append([]int(nil), badDyn.LiveIDs...)
	if len(badDyn.LiveIDs) > 1 {
		badDyn.LiveIDs[1] = badDyn.LiveIDs[0]
		bad.Dyn = &badDyn
		if _, err := RestoreEngine(&EngineState{Single: &bad}, EngineConfig{MaxK: 4}); err == nil {
			t.Fatal("duplicate live id accepted")
		}
	}
}
