package utk

// Machine-readable query-path latency baseline, mirroring the stream
// harness's BENCH_stream.json: TestQueryBenchJSON replays the serving paths
// the allocation budgets pin (cold, warm, hot, derived × UTK1/UTK2) on the
// default 50k/d=4 workload and writes per-path p50/p99/mean latency and
// allocs/op as JSON. The checked-in BENCH_query.json was produced by
//
//	go test -run TestQueryBenchJSON -querybench-json BENCH_query.json .
//
// on a quiet machine; CI regenerates a fresh copy every push and warns when
// any path's p50 or allocs/op exceeds 2× the checked-in numbers. Refresh the
// baseline with the command above when a latency change is intended.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

var querybenchJSON = flag.String("querybench-json", "", "write query-path benchmark results to this file and skip nothing else")

type queryBenchPath struct {
	Ops         int     `json:"ops"`
	MeanNs      int64   `json:"mean_ns"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type queryBenchReport struct {
	Config struct {
		N     int     `json:"n"`
		D     int     `json:"d"`
		K     int     `json:"k"`
		Sigma float64 `json:"sigma"`
	} `json:"config"`
	Paths map[string]queryBenchPath `json:"paths"`
}

// TestQueryBenchJSON is the BENCH_query.json generator; it only runs when
// -querybench-json names an output file (CI does; `go test ./...` skips it).
func TestQueryBenchJSON(t *testing.T) {
	if *querybenchJSON == "" {
		t.Skip("pass -querybench-json <path> to generate the query benchmark report")
	}
	const ops = 300
	recs := dataset.Synthetic(dataset.IND, benchN, benchD, 1)
	ds, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	gr := experiments.RandomBoxes(benchD-1, benchSigma, 1, 7)[0]
	lo, hi := gr.Bounds()
	r, err := NewBoxRegion(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{K: benchK, Region: r}
	ctx := context.Background()

	rep := queryBenchReport{Paths: map[string]queryBenchPath{}}
	rep.Config.N, rep.Config.D, rep.Config.K, rep.Config.Sigma = benchN, benchD, benchK, benchSigma

	measure := func(name string, f func()) {
		t.Helper()
		for i := 0; i < 10; i++ {
			f() // warm pools and per-depth sub-indexes off the record
		}
		durs := make([]time.Duration, ops)
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := range durs {
			start := time.Now()
			f()
			durs[i] = time.Since(start)
		}
		runtime.ReadMemStats(&m1)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		rep.Paths[name] = queryBenchPath{
			Ops:         ops,
			MeanNs:      int64(total) / int64(ops),
			P50Ns:       int64(durs[ops/2]),
			P99Ns:       int64(durs[ops*99/100]),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		}
		t.Logf("%-14s p50=%v p99=%v allocs/op=%.0f", name,
			time.Duration(rep.Paths[name].P50Ns), time.Duration(rep.Paths[name].P99Ns),
			rep.Paths[name].AllocsPerOp)
	}

	measure("cold/utk1", func() {
		if _, err := ds.UTK1(q); err != nil {
			t.Fatal(err)
		}
	})
	measure("cold/utk2", func() {
		if _, err := ds.UTK2(q); err != nil {
			t.Fatal(err)
		}
	})

	warm, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	measure("warm/utk1", func() {
		if _, err := warm.UTK1(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	measure("warm/utk2", func() {
		if _, err := warm.UTK2(ctx, q); err != nil {
			t.Fatal(err)
		}
	})

	hot, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK})
	if err != nil {
		t.Fatal(err)
	}
	measure("hot/utk1", func() {
		res, err := hot.UTK1(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	})
	measure("hot/utk2", func() {
		res, err := hot.UTK2(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	})

	// Derived paths stream distinct nested regions under one cached outer
	// UTK2 partitioning, so every op exercises containment derivation rather
	// than an exact-repeat cache hit.
	der, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK, CacheEntries: 2048})
	if err != nil {
		t.Fatal(err)
	}
	outerGr := experiments.RandomBoxes(benchD-1, 0.02, 1, 7)[0]
	olo, ohi := outerGr.Bounds()
	outer, err := NewBoxRegion(olo, ohi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := der.UTK2(ctx, Query{K: benchK, Region: outer}); err != nil {
		t.Fatal(err)
	}
	const nNested = 2 * (ops + 16)
	nested := make([]*Region, 0, nNested)
	for i := 0; len(nested) < cap(nested); i++ {
		nlo := make([]float64, len(olo))
		nhi := make([]float64, len(ohi))
		for j := range nlo {
			w := ohi[j] - olo[j]
			nlo[j] = olo[j] + w*(0.02+0.40*float64(i)/float64(nNested))
			nhi[j] = ohi[j] - w*(0.02+0.35*float64(i)/float64(nNested))
		}
		nr, err := NewBoxRegion(nlo, nhi)
		if err != nil {
			continue
		}
		nested = append(nested, nr)
	}
	next := 0
	take := func() *Region {
		if next >= len(nested) {
			t.Fatal("nested region stream exhausted")
		}
		nr := nested[next]
		next++
		return nr
	}
	measure("derived/utk1", func() {
		res, err := der.UTK1(ctx, Query{K: benchK, Region: take()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Derived {
			t.Fatal("nested query was not containment-derived")
		}
	})
	measure("derived/utk2", func() {
		res, err := der.UTK2(ctx, Query{K: benchK, Region: take()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Derived {
			t.Fatal("nested query was not containment-derived")
		}
	})

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*querybenchJSON, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *querybenchJSON)
}
