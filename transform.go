package utk

import (
	"errors"
	"fmt"
	"math"
)

// The paper's Section 6 observes that every algorithm in this library works
// unchanged for any scoring function that is (i) monotone in the data
// attributes and (ii) linear in the weights — that is, any score of the form
// S(p) = Σ w_i·f_i(p_i) with non-decreasing f_i. Because the weights enter
// linearly, such scoring reduces to plain weighted sums over the transformed
// records f(p); the helpers below perform that reduction so the general
// class is available through the ordinary Dataset API.

// MonotoneTransform is a non-decreasing per-attribute function.
type MonotoneTransform func(float64) float64

// PowerTransform returns the transform x ↦ x^p for p > 0, which realizes the
// weighted L_p-norm family of scoring functions the paper cites
// (Σ w_i·x_i^p ranks identically to the weighted L_p norm).
func PowerTransform(p float64) (MonotoneTransform, error) {
	if p <= 0 {
		return nil, fmt.Errorf("utk: power transform needs p > 0, got %g", p)
	}
	return func(x float64) float64 {
		if x < 0 {
			return -math.Pow(-x, p) // keep monotonicity for negative inputs
		}
		return math.Pow(x, p)
	}, nil
}

// LogTransform is the transform x ↦ log(1 + x), monotone on x ≥ 0; useful
// for heavy-tailed attributes.
func LogTransform(x float64) float64 {
	return math.Log1p(x)
}

// TransformRecords applies one monotone transform per attribute and returns
// the transformed records, ready for NewDataset. A nil entry leaves its
// attribute unchanged. UTK queries on the transformed dataset implement the
// generalized scoring S(p) = Σ w_i·f_i(p_i) exactly.
func TransformRecords(records [][]float64, fns []MonotoneTransform) ([][]float64, error) {
	if len(records) == 0 {
		return nil, errors.New("utk: no records to transform")
	}
	d := len(records[0])
	if len(fns) != d {
		return nil, fmt.Errorf("utk: %d transforms for %d attributes", len(fns), d)
	}
	out := make([][]float64, len(records))
	for i, rec := range records {
		if len(rec) != d {
			return nil, fmt.Errorf("utk: record %d has %d attributes, want %d", i, len(rec), d)
		}
		row := make([]float64, d)
		for j, v := range rec {
			if fns[j] == nil {
				row[j] = v
				continue
			}
			row[j] = fns[j](v)
		}
		out[i] = row
	}
	// Monotonicity sanity check on the observed values: for each attribute,
	// sorting by raw value must not reverse any transformed pair. This
	// catches accidentally decreasing transforms, which would silently break
	// every dominance-based filter.
	for j := 0; j < d; j++ {
		if fns[j] == nil {
			continue
		}
		for i := 1; i < len(records); i++ {
			a, b := records[i-1][j], records[i][j]
			fa, fb := out[i-1][j], out[i][j]
			if (a < b && fa > fb) || (a > b && fa < fb) {
				return nil, fmt.Errorf("utk: transform for attribute %d is not monotone", j)
			}
		}
	}
	return out, nil
}
