package utk

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/shard"
)

// EngineState is a deep snapshot of an Engine's mutable dataset state —
// exactly one of Single or Sharded is set, matching how the engine was
// built. It is the unit the durability layer snapshots and restores:
// applying the same update batches to a restored engine yields answers
// bit-identical to the original's.
type EngineState struct {
	Single  *engine.State
	Sharded *shard.State
}

// Epoch returns the state's index version (for sharded states, the sum of
// the per-shard versions, matching Engine.Stats().Epoch).
func (st *EngineState) Epoch() uint64 {
	switch {
	case st == nil:
		return 0
	case st.Single != nil:
		return st.Single.Epoch
	case st.Sharded != nil:
		var sum uint64
		for _, c := range st.Sharded.Children {
			sum += c.Epoch
		}
		return sum
	}
	return 0
}

// State captures the engine's dataset state as one consistent snapshot
// (serialized against updates; queries are not blocked). Record slices in
// the state are shared with the engine and must not be mutated.
func (e *Engine) State() (*EngineState, error) {
	switch b := e.e.(type) {
	case *engine.Engine:
		return &EngineState{Single: b.ExportState()}, nil
	case *shard.Engine:
		return &EngineState{Sharded: b.ExportState()}, nil
	}
	return nil, errors.New("utk: engine backend does not support state export")
}

// RestoreEngine rebuilds an Engine from a captured state without the
// originating Dataset: queries run over the snapshotted candidate superset
// and updates over the restored maintenance structure, so recovery costs
// O(live + superset) instead of a full index build. The restored engine has
// no Dataset behind it — it serves and updates its own record collection, as
// any engine does after its first update. cfg supplies the serving
// parameters (cache, workers, backpressure, timeout); the dataset-shaped
// parameters (MaxK, ShadowDepth, shard count) come from the state.
func RestoreEngine(st *EngineState, cfg EngineConfig) (*Engine, error) {
	if st == nil || (st.Single == nil) == (st.Sharded == nil) {
		return nil, errors.New("utk: engine state must carry exactly one of a single or a sharded snapshot")
	}
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultEngineCacheEntries
	case entries < 0:
		entries = 0
	}
	if st.Single != nil {
		b, err := engine.Restore(st.Single, engine.Config{
			MaxK:         cfg.MaxK,
			ShadowDepth:  cfg.ShadowDepth,
			CacheEntries: entries,
			Workers:      cfg.Workers,
			MaxQueued:    cfg.MaxQueued,
			QueryTimeout: cfg.QueryTimeout,
		})
		if err != nil {
			return nil, err
		}
		return &Engine{e: b}, nil
	}
	b, err := shard.Restore(st.Sharded, shard.Config{
		Shards: len(st.Sharded.Children),
		Engine: engine.Config{
			MaxK:         cfg.MaxK,
			ShadowDepth:  cfg.ShadowDepth,
			CacheEntries: entries,
			Workers:      cfg.Workers,
			MaxQueued:    cfg.MaxQueued,
			QueryTimeout: cfg.QueryTimeout,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Engine{e: b}, nil
}
