package utk

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// EngineConfig tunes a query-serving Engine.
type EngineConfig struct {
	// MaxK is the largest top-k depth the engine serves (required, positive).
	// The engine's candidate superset is maintained at this depth; queries
	// with K ≤ MaxK reuse it instead of refiltering the whole dataset.
	MaxK int
	// ShadowDepth is how many dominance levels beyond MaxK the engine
	// retains as a deletion-repair shadow band; values below 1 default to
	// MaxK. Deeper shadows survive more skyline-area deletions between
	// recompute fallbacks at the cost of a larger resident member set.
	ShadowDepth int
	// CacheEntries bounds the result cache (cost-aware eviction with a
	// containment index; see EngineStats.DerivedHits/CostEvictions). Zero
	// selects DefaultEngineCacheEntries; negative values disable caching.
	// Eviction is heap-ordered (O(log capacity) per overflow), so large
	// capacities are safe; under sustained updates the cache additionally
	// refuses admission for query classes whose entries are invalidated
	// faster than they are hit (EngineStats.AdmissionSkips).
	CacheEntries int
	// Workers bounds the engine's executor: at most this many tasks —
	// queries, plus the refinement subtasks of queries that request
	// intra-query parallelism via Query.Workers — run at a time. Values
	// below 1 default to runtime.GOMAXPROCS(0).
	Workers int
	// MaxQueued bounds how many queries may wait for an executor slot before
	// new arrivals are rejected with ErrSaturated — the backpressure signal
	// serving tiers map to 429 responses. 0 means unbounded (no
	// backpressure); negative means no queue at all (reject whenever every
	// worker is busy); positive is the bound itself.
	MaxQueued int
	// QueryTimeout, when positive, is the deadline applied to queries whose
	// context carries none. It covers queueing, waiting on a deduplicated
	// identical query, and — through the cancellation hook threaded into
	// the refinement recursion — the computation itself: an expired query
	// aborts mid-refinement and frees its worker slot promptly.
	QueryTimeout time.Duration
}

// DefaultEngineCacheEntries is the result-cache capacity used when
// EngineConfig.CacheEntries is zero.
const DefaultEngineCacheEntries = 256

// Engine serves many UTK queries over one dataset, amortizing work across
// queries: the r-dominance filtering reuses a maintained candidate superset,
// identical queries are answered from a cost-aware result cache — with
// containment-based reuse deriving answers for regions nested in a cached
// UTK2 region by cell clipping, and single-flight deduplication of
// concurrent duplicates — and execution runs on a bounded
// worker pool with per-query deadlines threaded into the refinement
// recursion. It is safe for concurrent use.
//
// The engine's dataset is mutable: Insert, Delete, and ApplyBatch maintain
// the candidate superset incrementally (orders of magnitude cheaper than
// rebuilding the engine) and invalidate only the cached results the change
// can actually affect. The originating Dataset itself stays immutable —
// after the first update the engine's answers describe its own, updated
// record collection, with inserted records assigned fresh ids above the
// Dataset's range. Before any update, answers equal the direct
// Dataset.UTK1 and Dataset.UTK2 calls.
//
// An Engine is backed either by a single serving engine (NewEngine) or by a
// horizontally sharded one (NewShardedEngine); the query and update API is
// identical, and sharded answers are exactly the single-engine answers.
type Engine struct {
	ds *Dataset
	e  backend
}

// backend is the serving contract shared by the single-partition engine and
// the cross-shard merge engine.
type backend interface {
	Do(ctx context.Context, req engine.Request) (*engine.Result, error)
	DoBatch(ctx context.Context, reqs []engine.Request) ([]*engine.Result, []error)
	Insert(rec []float64) (int, error)
	Delete(id int) error
	ApplyBatch(ops []engine.UpdateOp) (*engine.UpdateResult, error)
	ApplyBatchPipelined(ops []engine.UpdateOp) (*engine.UpdateResult, func(), error)
	Stats() engine.Stats
	MaxK() int
	Shards() int
	Dim() int
}

// UpdateKind discriminates UpdateOp.
type UpdateKind int

const (
	// UpdateInsert adds Record to the engine's dataset.
	UpdateInsert UpdateKind = iota
	// UpdateDelete removes the record with id ID.
	UpdateDelete
)

// UpdateOp is one element of an Engine.ApplyBatch request.
type UpdateOp struct {
	Kind   UpdateKind
	Record []float64 // for UpdateInsert
	ID     int       // for UpdateDelete
}

// Errors returned by the update API.
var (
	// ErrUnknownRecord reports a delete of an id that is not live.
	ErrUnknownRecord = engine.ErrUnknownRecord
	// ErrBadUpdate reports a malformed update (wrong dimensionality,
	// non-finite attribute, or unknown operation kind).
	ErrBadUpdate = engine.ErrBadUpdate
)

// ErrSaturated reports that a query was refused because the engine's
// executor queue was at its EngineConfig.MaxQueued bound — the load-shedding
// signal the HTTP tier converts into 429 with Retry-After.
var ErrSaturated = engine.ErrSaturated

// EngineStats is a point-in-time snapshot of an Engine's counters.
type EngineStats struct {
	// Queries counts completed queries, however they were served.
	Queries uint64
	// Hits and Misses split result-cache lookups; Shared counts queries that
	// coalesced onto another caller's identical in-flight computation.
	// DerivedHits counts misses answered by clipping a cached
	// containing-region UTK2 result instead of recomputing.
	Hits        uint64
	Misses      uint64
	Shared      uint64
	DerivedHits uint64
	// Evictions counts capacity evictions; CostEvictions counts the subset
	// where the cost-aware policy chose a different victim than plain
	// recency would have. Invalidations counts cache entries evicted because
	// an update could affect them. Rejected counts queries that gave up
	// (deadline or cancellation) before obtaining a result. Saturated counts
	// queries refused at the executor's queue bound (MaxQueued).
	Evictions     uint64
	CostEvictions uint64
	Invalidations uint64
	Rejected      uint64
	Saturated     uint64
	// InFlight is the number of query computations executing right now;
	// Queued is the number of tasks waiting for an executor slot.
	InFlight int
	Queued   int
	// CacheEntries is the current cache population.
	CacheEntries int
	// Epoch is the current index version; it advances whenever an update
	// changes the candidate superset. Live is the current record population.
	Epoch uint64
	Live  int
	// SupersetSize is the current candidate-superset size — the pool every
	// warm query filters instead of the full dataset. ShadowSize and
	// Coverage describe the dynamic maintenance structure behind it: the
	// near-skyband records retained for deletion repair, and the dominance
	// depth up to which membership is currently guaranteed.
	SupersetSize int
	ShadowSize   int
	Coverage     int
	// Inserts, Deletes, and UpdateBatches count applied updates; Promotions,
	// Demotions, ShadowEvictions, and Rebuilds are the incremental skyband's
	// maintenance counters (shadow→band repairs, band→shadow crossings,
	// drops past the retention depth, and shadow-exhaustion recomputations).
	Inserts         uint64
	Deletes         uint64
	UpdateBatches   uint64
	Promotions      uint64
	Demotions       uint64
	ShadowEvictions uint64
	Rebuilds        uint64
	// Sustained-update streaming counters. CoalescedOps counts batch ops
	// elided because an insert and its matching delete cancelled within one
	// batch. AdmissionSkips counts result-cache admissions refused because
	// the entry's class was being invalidated faster than it was hit.
	// Exhaustions counts shadow exhaustions (each forces a reseed); Repairs
	// and RepairSteps count incremental reseed passes and the chunked steps
	// they ran. ShadowDepth is the current adaptive retention depth (deepest
	// shard when sharded); ShadowGrows and ShadowShrinks count its moves.
	CoalescedOps   uint64
	AdmissionSkips uint64
	Exhaustions    uint64
	Repairs        uint64
	RepairSteps    uint64
	ShadowDepth    int
	ShadowGrows    uint64
	ShadowShrinks  uint64
	// ProbeBatches counts update batches that ran a cache-invalidation probe
	// pass; ProbesSaved counts the per-entry probe evaluations avoided by
	// grouping resident entries by (region, k) and probing each distinct
	// shape once per batch instead of once per entry.
	ProbeBatches uint64
	ProbesSaved  uint64
	// BandMaintenanceNS is the cumulative wall time (nanoseconds) spent in
	// batch-native candidate-superset maintenance — the blocking begin-stage
	// cost of applying update batches. BatchApplyOps counts update ops
	// applied through that batch path, and ParallelMaintenanceChunks the
	// maintenance chunks fanned out across executor workers.
	BandMaintenanceNS         uint64
	BatchApplyOps             uint64
	ParallelMaintenanceChunks uint64
	// MaxK and Workers echo the effective configuration. Shards is the
	// number of horizontal partitions behind the engine (1 for NewEngine).
	MaxK    int
	Workers int
	Shards  int
}

// NewEngine builds a serving engine over the dataset.
func (ds *Dataset) NewEngine(cfg EngineConfig) (*Engine, error) {
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultEngineCacheEntries
	case entries < 0:
		entries = 0
	}
	e, err := engine.New(ds.tree, ds.records, engine.Config{
		MaxK:         cfg.MaxK,
		ShadowDepth:  cfg.ShadowDepth,
		CacheEntries: entries,
		Workers:      cfg.Workers,
		MaxQueued:    cfg.MaxQueued,
		QueryTimeout: cfg.QueryTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{ds: ds, e: e}, nil
}

// NewShardedEngine builds a serving engine that horizontally partitions the
// dataset across the given number of shards (round-robin), each maintained
// by its own child engine, and answers queries exactly by merging: every
// shard's depth-k candidate superset is collected and the exact refinement
// runs once over the union. Record ids, query results, and the update API
// are identical to NewEngine — a record in the global candidate superset is
// necessarily in its shard's superset, so the merged answers match the
// single-engine answers exactly. Inserts and deletes route to the owning
// shard and recompute only that shard's band.
//
// cfg.Workers and cfg.CacheEntries configure the merge layer (per-shard
// result caches are disabled — the merged result is what gets cached);
// cfg.MaxK and cfg.ShadowDepth configure each shard's maintenance. The
// dataset must have at least one record per shard.
func (ds *Dataset) NewShardedEngine(shards int, cfg EngineConfig) (*Engine, error) {
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultEngineCacheEntries
	case entries < 0:
		entries = 0
	}
	e, err := shard.New(ds.records, shard.Config{
		Shards: shards,
		Engine: engine.Config{
			MaxK:         cfg.MaxK,
			ShadowDepth:  cfg.ShadowDepth,
			CacheEntries: entries,
			Workers:      cfg.Workers,
			MaxQueued:    cfg.MaxQueued,
			QueryTimeout: cfg.QueryTimeout,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Engine{ds: ds, e: e}, nil
}

// MaxK returns the largest top-k depth the engine serves.
func (e *Engine) MaxK() int { return e.e.MaxK() }

// Dim returns the data dimensionality the engine serves.
func (e *Engine) Dim() int { return e.e.Dim() }

// Shards returns the number of horizontal partitions behind the engine
// (1 for engines built with NewEngine).
func (e *Engine) Shards() int { return e.e.Shards() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	st := e.e.Stats()
	return EngineStats{
		Queries:         st.Queries,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Shared:          st.Shared,
		DerivedHits:     st.DerivedHits,
		Evictions:       st.Evictions,
		CostEvictions:   st.CostEvictions,
		Invalidations:   st.Invalidations,
		Rejected:        st.Rejected,
		Saturated:       st.Saturated,
		InFlight:        st.InFlight,
		Queued:          st.Queued,
		CacheEntries:    st.CacheEntries,
		Epoch:           st.Epoch,
		Live:            st.Live,
		SupersetSize:    st.SupersetSize,
		ShadowSize:      st.ShadowSize,
		Coverage:        st.Coverage,
		Inserts:         st.Inserts,
		Deletes:         st.Deletes,
		UpdateBatches:   st.UpdateBatches,
		Promotions:      st.Promotions,
		Demotions:       st.Demotions,
		ShadowEvictions: st.ShadowEvictions,
		Rebuilds:        st.Rebuilds,
		CoalescedOps:    st.CoalescedOps,
		AdmissionSkips:  st.AdmissionSkips,
		ProbeBatches:    st.ProbeBatches,
		ProbesSaved:     st.ProbesSaved,
		Exhaustions:     st.Exhaustions,
		Repairs:         st.Repairs,
		RepairSteps:     st.RepairSteps,
		ShadowDepth:     st.ShadowDepth,
		ShadowGrows:     st.ShadowGrows,
		ShadowShrinks:   st.ShadowShrinks,

		BandMaintenanceNS:         st.BandMaintenanceNS,
		BatchApplyOps:             st.BatchApplyOps,
		ParallelMaintenanceChunks: st.ParallelMaintenanceChunks,

		MaxK:    st.MaxK,
		Workers: st.Workers,
		Shards:  e.e.Shards(),
	}
}

// Insert adds a record to the engine's dataset (copied; same dimensionality
// as the dataset, finite attributes) and returns its assigned id. The
// candidate superset is repaired incrementally and only the cached results
// the new record can actually affect are invalidated.
func (e *Engine) Insert(record []float64) (int, error) {
	return e.e.Insert(record)
}

// Delete removes the record with the given id from the engine's dataset,
// under the same incremental-maintenance guarantees as Insert. Deleting an
// id that is not live returns ErrUnknownRecord.
func (e *Engine) Delete(id int) error {
	return e.e.Delete(id)
}

// UpdateResult reports the outcome of one ApplyBatch: the per-op ids plus
// the engine state as published by this batch — under concurrent updates,
// these numbers belong to this batch, not whichever applied last.
type UpdateResult struct {
	// IDs is index-aligned with the batch ops: assigned ids for inserts,
	// the deleted ids for deletes.
	IDs []int
	// Epoch is the index version current when this batch was published.
	Epoch uint64
	// Live, SupersetSize, and ShadowSize snapshot the dataset right after
	// this batch applied.
	Live         int
	SupersetSize int
	ShadowSize   int
}

// ApplyBatch applies a sequence of updates atomically with respect to
// queries: every concurrent query observes either the pre-batch or the
// post-batch dataset, never an intermediate state. A validation error
// (ErrBadUpdate, ErrUnknownRecord) leaves the engine unchanged.
func (e *Engine) ApplyBatch(ops []UpdateOp) (*UpdateResult, error) {
	converted := make([]engine.UpdateOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case UpdateInsert:
			converted[i] = engine.UpdateOp{Kind: engine.UpdateInsert, Record: op.Record}
		case UpdateDelete:
			converted[i] = engine.UpdateOp{Kind: engine.UpdateDelete, ID: op.ID}
		default:
			return nil, ErrBadUpdate
		}
	}
	res, err := e.e.ApplyBatch(converted)
	if err != nil {
		return nil, err
	}
	return &UpdateResult{
		IDs:          res.IDs,
		Epoch:        res.Epoch,
		Live:         res.Live,
		SupersetSize: res.SupersetSize,
		ShadowSize:   res.ShadowSize,
	}, nil
}

// ApplyBatchPipelined is the two-stage form of ApplyBatch for callers with
// their own per-batch work to overlap against cache invalidation — the
// durable registry runs its WAL append concurrently with the returned
// commit. When this call returns, the batch has applied and the result is
// final, but queries observe it only once commit has run; commit must be
// called exactly once per successful call (calling it again is a no-op).
// Single-partition engines defer invalidation probing and the index publish
// to commit; sharded engines apply fully up front and return a no-op commit.
func (e *Engine) ApplyBatchPipelined(ops []UpdateOp) (*UpdateResult, func(), error) {
	converted := make([]engine.UpdateOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case UpdateInsert:
			converted[i] = engine.UpdateOp{Kind: engine.UpdateInsert, Record: op.Record}
		case UpdateDelete:
			converted[i] = engine.UpdateOp{Kind: engine.UpdateDelete, ID: op.ID}
		default:
			return nil, nil, ErrBadUpdate
		}
	}
	res, commit, err := e.e.ApplyBatchPipelined(converted)
	if err != nil {
		return nil, nil, err
	}
	return &UpdateResult{
		IDs:          res.IDs,
		Epoch:        res.Epoch,
		Live:         res.Live,
		SupersetSize: res.SupersetSize,
		ShadowSize:   res.ShadowSize,
	}, commit, nil
}

// UTK1 answers a UTK1 query through the engine. The query must use the
// paper's algorithms (AlgoAuto or AlgoRSA). Query.Workers > 1 requests
// intra-query parallel refinement, fanned out on the engine's own executor
// so one pool governs inter- and intra-query concurrency.
func (e *Engine) UTK1(ctx context.Context, q Query) (*UTK1Result, error) {
	res, err := e.do(ctx, engine.UTK1, q)
	if err != nil {
		return nil, err
	}
	return &UTK1Result{
		Records:  append([]int(nil), res.IDs...),
		Stats:    statsFromCore(&res.Stats),
		CacheHit: res.CacheHit,
		Derived:  res.Derived,
	}, nil
}

// UTK2 answers a UTK2 query through the engine, under the same constraints
// as UTK1.
func (e *Engine) UTK2(ctx context.Context, q Query) (*UTK2Result, error) {
	res, err := e.do(ctx, engine.UTK2, q)
	if err != nil {
		return nil, err
	}
	out := utk2ResultFromCells(res.Cells, statsFromCore(&res.Stats))
	out.CacheHit = res.CacheHit
	out.Derived = res.Derived
	return out, nil
}

// UTK1Batch answers many UTK1 queries concurrently (bounded by the engine's
// worker pool), returning one result or error per query, index-aligned.
func (e *Engine) UTK1Batch(ctx context.Context, qs []Query) ([]*UTK1Result, []error) {
	results := make([]*UTK1Result, len(qs))
	errs := e.batch(ctx, engine.UTK1, qs, func(i int, res *engine.Result) {
		results[i] = &UTK1Result{
			Records:  append([]int(nil), res.IDs...),
			Stats:    statsFromCore(&res.Stats),
			CacheHit: res.CacheHit,
			Derived:  res.Derived,
		}
	})
	return results, errs
}

// UTK2Batch answers many UTK2 queries concurrently, like UTK1Batch.
func (e *Engine) UTK2Batch(ctx context.Context, qs []Query) ([]*UTK2Result, []error) {
	results := make([]*UTK2Result, len(qs))
	errs := e.batch(ctx, engine.UTK2, qs, func(i int, res *engine.Result) {
		results[i] = utk2ResultFromCells(res.Cells, statsFromCore(&res.Stats))
		results[i].CacheHit = res.CacheHit
		results[i].Derived = res.Derived
	})
	return results, errs
}

func (e *Engine) batch(ctx context.Context, v engine.Variant, qs []Query, emit func(int, *engine.Result)) []error {
	reqs := make([]engine.Request, 0, len(qs))
	idx := make([]int, 0, len(qs)) // batch position -> original position
	errs := make([]error, len(qs))
	for i, q := range qs {
		req, err := e.request(v, q)
		if err != nil {
			errs[i] = err
			continue
		}
		reqs = append(reqs, req)
		idx = append(idx, i)
	}
	results, doErrs := e.e.DoBatch(ctx, reqs)
	for bi, i := range idx {
		if doErrs[bi] != nil {
			errs[i] = doErrs[bi]
			continue
		}
		emit(i, results[bi])
	}
	return errs
}

func (e *Engine) do(ctx context.Context, v engine.Variant, q Query) (*engine.Result, error) {
	req, err := e.request(v, q)
	if err != nil {
		return nil, err
	}
	return e.e.Do(ctx, req)
}

func (e *Engine) request(v engine.Variant, q Query) (engine.Request, error) {
	if q.Algorithm != AlgoAuto && q.Algorithm != AlgoRSA {
		return engine.Request{}, errors.New("utk: the engine serves the paper's RSA/JAA algorithms only")
	}
	if err := q.validateDim(e.e.Dim()); err != nil {
		return engine.Request{}, err
	}
	return engine.Request{
		Variant: v,
		K:       q.K,
		Region:  q.Region.r,
		Opts:    q.coreOptions(),
	}, nil
}
