package utk

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
)

// EngineConfig tunes a query-serving Engine.
type EngineConfig struct {
	// MaxK is the largest top-k depth the engine serves (required, positive).
	// The engine's construction-time candidate superset is computed at this
	// depth; queries with K ≤ MaxK reuse it instead of refiltering the whole
	// dataset.
	MaxK int
	// CacheEntries bounds the LRU result cache. Zero selects
	// DefaultEngineCacheEntries; negative values disable caching.
	CacheEntries int
	// Workers bounds the number of concurrently executing queries; values
	// below 1 default to runtime.GOMAXPROCS(0).
	Workers int
	// QueryTimeout, when positive, is the deadline applied to queries whose
	// context carries none. It covers queueing and waiting on a deduplicated
	// identical query; a refinement that already started runs to completion,
	// but the waiting caller returns early.
	QueryTimeout time.Duration
}

// DefaultEngineCacheEntries is the result-cache capacity used when
// EngineConfig.CacheEntries is zero.
const DefaultEngineCacheEntries = 256

// Engine serves many UTK queries over one dataset, amortizing work across
// queries: the r-dominance filtering reuses a construction-time candidate
// superset, identical queries are answered from an LRU cache (with
// single-flight deduplication of concurrent duplicates), and execution runs
// on a bounded worker pool with per-query deadlines. It is safe for
// concurrent use and returns the same answers as the direct Dataset.UTK1 and
// Dataset.UTK2 calls.
type Engine struct {
	ds *Dataset
	e  *engine.Engine
}

// EngineStats is a point-in-time snapshot of an Engine's counters.
type EngineStats struct {
	// Queries counts completed queries, however they were served.
	Queries uint64
	// Hits and Misses split result-cache lookups; Shared counts queries that
	// coalesced onto another caller's identical in-flight computation.
	Hits   uint64
	Misses uint64
	Shared uint64
	// Evictions counts cache evictions; Rejected counts queries that gave up
	// (deadline or cancellation) before obtaining a result.
	Evictions uint64
	Rejected  uint64
	// InFlight is the number of computations executing right now.
	InFlight int
	// CacheEntries is the current cache population.
	CacheEntries int
	// SupersetSize is the size of the construction-time candidate superset —
	// the pool every warm query filters instead of the full dataset.
	SupersetSize int
	// MaxK and Workers echo the effective configuration.
	MaxK    int
	Workers int
}

// NewEngine builds a serving engine over the dataset.
func (ds *Dataset) NewEngine(cfg EngineConfig) (*Engine, error) {
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultEngineCacheEntries
	case entries < 0:
		entries = 0
	}
	e, err := engine.New(ds.tree, ds.records, engine.Config{
		MaxK:         cfg.MaxK,
		CacheEntries: entries,
		Workers:      cfg.Workers,
		QueryTimeout: cfg.QueryTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{ds: ds, e: e}, nil
}

// MaxK returns the largest top-k depth the engine serves.
func (e *Engine) MaxK() int { return e.e.MaxK() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	st := e.e.Stats()
	return EngineStats{
		Queries:      st.Queries,
		Hits:         st.Hits,
		Misses:       st.Misses,
		Shared:       st.Shared,
		Evictions:    st.Evictions,
		Rejected:     st.Rejected,
		InFlight:     st.InFlight,
		CacheEntries: st.CacheEntries,
		SupersetSize: st.SupersetSize,
		MaxK:         st.MaxK,
		Workers:      st.Workers,
	}
}

// UTK1 answers a UTK1 query through the engine. The query must use the
// paper's algorithms (AlgoAuto or AlgoRSA); Query.Workers is ignored — the
// engine's pool provides the concurrency.
func (e *Engine) UTK1(ctx context.Context, q Query) (*UTK1Result, error) {
	res, err := e.do(ctx, engine.UTK1, q)
	if err != nil {
		return nil, err
	}
	return &UTK1Result{
		Records:  append([]int(nil), res.IDs...),
		Stats:    statsFromCore(&res.Stats),
		CacheHit: res.CacheHit,
	}, nil
}

// UTK2 answers a UTK2 query through the engine, under the same constraints
// as UTK1.
func (e *Engine) UTK2(ctx context.Context, q Query) (*UTK2Result, error) {
	res, err := e.do(ctx, engine.UTK2, q)
	if err != nil {
		return nil, err
	}
	out := utk2ResultFromCells(res.Cells, statsFromCore(&res.Stats))
	out.CacheHit = res.CacheHit
	return out, nil
}

// UTK1Batch answers many UTK1 queries concurrently (bounded by the engine's
// worker pool), returning one result or error per query, index-aligned.
func (e *Engine) UTK1Batch(ctx context.Context, qs []Query) ([]*UTK1Result, []error) {
	results := make([]*UTK1Result, len(qs))
	errs := e.batch(ctx, engine.UTK1, qs, func(i int, res *engine.Result) {
		results[i] = &UTK1Result{
			Records:  append([]int(nil), res.IDs...),
			Stats:    statsFromCore(&res.Stats),
			CacheHit: res.CacheHit,
		}
	})
	return results, errs
}

// UTK2Batch answers many UTK2 queries concurrently, like UTK1Batch.
func (e *Engine) UTK2Batch(ctx context.Context, qs []Query) ([]*UTK2Result, []error) {
	results := make([]*UTK2Result, len(qs))
	errs := e.batch(ctx, engine.UTK2, qs, func(i int, res *engine.Result) {
		results[i] = utk2ResultFromCells(res.Cells, statsFromCore(&res.Stats))
		results[i].CacheHit = res.CacheHit
	})
	return results, errs
}

func (e *Engine) batch(ctx context.Context, v engine.Variant, qs []Query, emit func(int, *engine.Result)) []error {
	reqs := make([]engine.Request, 0, len(qs))
	idx := make([]int, 0, len(qs)) // batch position -> original position
	errs := make([]error, len(qs))
	for i, q := range qs {
		req, err := e.request(v, q)
		if err != nil {
			errs[i] = err
			continue
		}
		reqs = append(reqs, req)
		idx = append(idx, i)
	}
	results, doErrs := e.e.DoBatch(ctx, reqs)
	for bi, i := range idx {
		if doErrs[bi] != nil {
			errs[i] = doErrs[bi]
			continue
		}
		emit(i, results[bi])
	}
	return errs
}

func (e *Engine) do(ctx context.Context, v engine.Variant, q Query) (*engine.Result, error) {
	req, err := e.request(v, q)
	if err != nil {
		return nil, err
	}
	return e.e.Do(ctx, req)
}

func (e *Engine) request(v engine.Variant, q Query) (engine.Request, error) {
	if q.Algorithm != AlgoAuto && q.Algorithm != AlgoRSA {
		return engine.Request{}, errors.New("utk: the engine serves the paper's RSA/JAA algorithms only")
	}
	if err := q.validate(e.ds); err != nil {
		return engine.Request{}, err
	}
	return engine.Request{
		Variant: v,
		K:       q.K,
		Region:  q.Region.r,
		Opts:    q.coreOptions(),
	}, nil
}
