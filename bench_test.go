package utk

// One testing.B benchmark per paper table/figure. Each benchmark times the
// core operation of its figure at a small but representative configuration,
// so `go test -bench=.` finishes quickly; the full sweeps that regenerate
// the figures' tables live in cmd/utkbench (see DESIGN.md §3 for the
// mapping). Dataset construction is cached across benchmarks.

import (
	"context"
	"math/rand"

	"fmt"
	"repro/internal/arrangement"
	"repro/internal/klevel"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/hull"
	"repro/internal/rtree"
	"repro/internal/skyband"
)

type benchData struct {
	data [][]float64
	tree *rtree.Tree
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchData{}
)

func benchDataset(b *testing.B, name string, gen func() [][]float64) *benchData {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchCache[name]; ok {
		return d
	}
	data := gen()
	tree, err := rtree.BulkLoad(data, rtree.DefaultFanout)
	if err != nil {
		b.Fatal(err)
	}
	d := &benchData{data: data, tree: tree}
	benchCache[name] = d
	return d
}

func benchIND(b *testing.B, n, d int) *benchData {
	return benchDataset(b, fmt.Sprintf("IND-%d-%d", n, d), func() [][]float64 {
		return dataset.Synthetic(dataset.IND, n, d, 1)
	})
}

func benchBox(b *testing.B, dim int, sigma float64) *geom.Region {
	b.Helper()
	return experiments.RandomBoxes(dim, sigma, 1, 7)[0]
}

const (
	benchN     = 50000
	benchD     = 4
	benchK     = 10
	benchSigma = 0.01
)

// BenchmarkFig9CaseStudy runs the 3-attribute NBA case study end to end
// (Figure 9(b)).
func BenchmarkFig9CaseStudy(b *testing.B) {
	players := dataset.NBA2017()
	m, err := dataset.PlayersMatrix(players, "reb", "pts", "ast")
	if err != nil {
		b.Fatal(err)
	}
	data := dataset.Normalize10(m)
	tree, err := rtree.BulkLoad(data, rtree.DefaultFanout)
	if err != nil {
		b.Fatal(err)
	}
	r, err := geom.NewBox([]float64{0.2, 0.5}, []float64{0.3, 0.6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.JAA(tree, r, 3, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10aFilters measures the three operators Figure 10(a) compares.
func BenchmarkFig10aFilters(b *testing.B) {
	nba := benchDataset(b, "NBA-6000", func() [][]float64 { return dataset.NBA(6000, 1) })
	r := benchBox(b, 7, benchSigma)
	b.Run("k-skyband", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyband.KSkyband(nba.tree, benchK)
		}
	})
	b.Run("onion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.FilterOnly(nba.tree, nba.data, benchK, baseline.ON)
		}
	})
	b.Run("UTK1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RSA(nba.tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10bTopKCover measures the incremental top-k probe Figure 10(b)
// compares UTK1 against.
func BenchmarkFig10bTopKCover(b *testing.B) {
	nba := benchDataset(b, "NBA-6000", func() [][]float64 { return dataset.NBA(6000, 1) })
	r := benchBox(b, 7, benchSigma)
	ids, _, err := core.RSA(nba.tree, r, benchK, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pivot := r.Pivot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := map[int]bool{}
		for _, id := range ids {
			want[id] = true
		}
		covered := 0
		// Incremental top-k by growing k until all UTK1 records are output.
		for kk := benchK; covered < len(want); kk *= 2 {
			covered = 0
			top, err := benchTopK(nba.data, pivot, kk)
			if err != nil {
				b.Fatal(err)
			}
			for _, id := range top {
				if want[id] {
					covered++
				}
			}
		}
	}
}

func benchTopK(data [][]float64, w []float64, k int) ([]int, error) {
	ds, err := NewDataset(data)
	if err != nil {
		return nil, err
	}
	return ds.TopK(w, k)
}

// BenchmarkFig11aUTK1 compares SK, ON, and RSA at the default k
// (Figure 11(a)).
func BenchmarkFig11aUTK1(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, benchSigma)
	skC := baseline.FilterOnly(idx.tree, idx.data, benchK, baseline.SK)
	onC := baseline.FilterOnly(idx.tree, idx.data, benchK, baseline.ON)
	b.Run("SK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.UTK1From(skC, r, benchK, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ON", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.UTK1From(onC, r, benchK, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RSA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RSA(idx.tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig11bUTK2 compares SK, ON, and JAA for UTK2 (Figure 11(b)).
func BenchmarkFig11bUTK2(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, benchSigma)
	skC := baseline.FilterOnly(idx.tree, idx.data, benchK, baseline.SK)
	b.Run("SK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.UTK2From(skC, r, benchK, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JAA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12 covers the distribution/cardinality sweep of Figure 12:
// RSA and JAA on each distribution at the bench scale.
func BenchmarkFig12(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.COR, dataset.IND, dataset.ANTI} {
		kind := kind
		idx := benchDataset(b, "F12-"+kind.String(), func() [][]float64 {
			return dataset.Synthetic(kind, benchN, benchD, 1)
		})
		r := benchBox(b, benchD-1, benchSigma)
		b.Run("RSA/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RSA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("JAA/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Dimensionality sweeps data dimensionality (Figure 13).
func BenchmarkFig13Dimensionality(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5, 6, 7} {
		d := d
		idx := benchIND(b, benchN, d)
		r := benchBox(b, d-1, benchSigma)
		b.Run(fmt.Sprintf("RSA/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RSA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("JAA/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14RegionSize sweeps the query region side σ (Figure 14).
func BenchmarkFig14RegionSize(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	for _, sigma := range []float64{0.001, 0.01, 0.05} {
		r := benchBox(b, benchD-1, sigma)
		b.Run(fmt.Sprintf("RSA/sigma=%g", sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RSA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("JAA/sigma=%g", sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15RealDatasets runs JAA on the three real-data surrogates
// (Figure 15).
func BenchmarkFig15RealDatasets(b *testing.B) {
	specs := []struct {
		name string
		d    int
		gen  func() [][]float64
	}{
		{"HOTEL", 4, func() [][]float64 { return dataset.Hotel(50000, 1) }},
		{"HOUSE", 6, func() [][]float64 { return dataset.House(40000, 1) }},
		{"NBA", 8, func() [][]float64 { return dataset.NBA(6000, 1) }},
	}
	for _, s := range specs {
		idx := benchDataset(b, "F15-"+s.name, s.gen)
		r := benchBox(b, s.d-1, benchSigma)
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16RegionSizeReal sweeps σ on the HOTEL surrogate (Figure 16).
func BenchmarkFig16RegionSizeReal(b *testing.B) {
	idx := benchDataset(b, "F15-HOTEL", func() [][]float64 { return dataset.Hotel(50000, 1) })
	for _, sigma := range []float64{0.001, 0.01, 0.05} {
		r := benchBox(b, 3, sigma)
		b.Run(fmt.Sprintf("sigma=%g", sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Defaults runs both algorithms at the Table 1 default
// parameters — the headline configuration of the whole evaluation.
func BenchmarkTable1Defaults(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, benchSigma)
	b.Run("RSA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RSA(idx.tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JAA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JAA(idx.tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDrill quantifies the drill optimization (DESIGN.md
// ablation).
func BenchmarkAblationDrill(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, benchSigma)
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"drill=graph", core.Options{}},
		{"drill=linear", core.Options{LinearDrill: true}},
		{"drill=off", core.Options{DisableDrill: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RSA(idx.tree, r, benchK, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubstrates measures the supporting structures in isolation:
// filtering (r-skyband + graph), the R-tree build, and onion layers.
func BenchmarkSubstrates(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, benchSigma)
	b.Run("rskyband-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyband.BuildGraph(idx.tree, r, benchK)
		}
	})
	b.Run("rtree-bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtree.BulkLoad(idx.data, rtree.DefaultFanout); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("onion-on-skyband", func(b *testing.B) {
		sky := skyband.KSkyband(idx.tree, benchK)
		recs := make([][]float64, len(sky))
		for i, id := range sky {
			recs[i] = idx.data[id]
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hull.OnionLayers(recs, benchK)
		}
	})
}

// BenchmarkQuadVsBinary compares the two arrangement-indexing approaches of
// Section 4.5 (space-partitioning quad tree vs implicit binary split tree)
// on identical half-space workloads — the design-choice ablation DESIGN.md
// calls out.
func BenchmarkQuadVsBinary(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const dim = 3
	lo := []float64{0.2, 0.2, 0.2}
	hi := []float64{0.3, 0.3, 0.3}
	const nHS = 24
	hs := make([]geom.Halfspace, nHS)
	for i := range hs {
		h := geom.Halfspace{A: make([]float64, dim)}
		for j := range h.A {
			h.A[j] = rng.NormFloat64()
		}
		for j := range h.A {
			h.B += h.A[j] * (lo[j] + rng.Float64()*(hi[j]-lo[j]))
		}
		hs[i] = h
	}
	base := boxHalfspacesBench(lo, hi)
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			arr, err := arrangement.New(dim, base, nHS, nil)
			if err != nil {
				b.Fatal(err)
			}
			for id, h := range hs {
				arr.Insert(id, h)
			}
			_ = arr.MinCount()
		}
	})
	b.Run("quad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q, err := arrangement.NewQuad(lo, hi, nHS, 6, nil)
			if err != nil {
				b.Fatal(err)
			}
			for id, h := range hs {
				q.Insert(id, h)
			}
			_ = q.MinCount()
		}
	})
}

func boxHalfspacesBench(lo, hi []float64) []geom.Halfspace {
	out := make([]geom.Halfspace, 0, 2*len(lo))
	for i := range lo {
		a := make([]float64, len(lo))
		a[i] = 1
		out = append(out, geom.Halfspace{A: a, B: lo[i]})
		bb := make([]float64, len(lo))
		bb[i] = -1
		out = append(out, geom.Halfspace{A: bb, B: -hi[i]})
	}
	return out
}

// BenchmarkSweep2D compares the d = 2 dual-line sweep fast path against the
// general RSA/JAA machinery on 2-attribute data.
func BenchmarkSweep2D(b *testing.B) {
	data := dataset.Synthetic(dataset.IND, 50000, 2, 3)
	tree, err := rtree.BulkLoad(data, rtree.DefaultFanout)
	if err != nil {
		b.Fatal(err)
	}
	r, err := geom.NewBox([]float64{0.4}, []float64{0.45})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := klevel.UTK2(data, 0.4, 0.45, benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JAA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.JAA(tree, r, benchK, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineSetup builds a Dataset and an Engine over the default bench
// workload for the cold/warm comparison. The engine cache is disabled so the
// warm numbers measure graph reuse alone, not result caching.
func benchEngineSetup(b *testing.B) (*Dataset, *Engine, *Region) {
	b.Helper()
	idx := benchIND(b, benchN, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	e, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK, CacheEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	gr := benchBox(b, benchD-1, benchSigma)
	lo, hi := gr.Bounds()
	r, err := NewBoxRegion(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	return ds, e, r
}

// BenchmarkEngineColdUTK1 is the amortization baseline: every query pays the
// full Dataset.UTK1 pipeline, including the branch-and-bound filtering pass
// over the whole R-tree.
func BenchmarkEngineColdUTK1(b *testing.B) {
	ds, _, r := benchEngineSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.UTK1(Query{K: benchK, Region: r}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmUTK1 runs the same workload through an Engine with the
// result cache disabled: every query is a cache miss, but filtering reuses
// the construction-time candidate superset instead of rescanning the R-tree
// — the build-once/query-many amortization this engine exists for.
func BenchmarkEngineWarmUTK1(b *testing.B) {
	_, e, r := benchEngineSetup(b)
	ctx := context.Background()
	if _, err := e.UTK1(ctx, Query{K: benchK, Region: r}); err != nil {
		b.Fatal(err) // warm the per-depth sub-index
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.UTK1(ctx, Query{K: benchK, Region: r}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmUTK2 is the UTK2 counterpart of the warm benchmark.
func BenchmarkEngineWarmUTK2(b *testing.B) {
	ds, e, r := benchEngineSetup(b)
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ds.UTK2(Query{K: benchK, Region: r}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := e.UTK2(ctx, Query{K: benchK, Region: r}); err != nil {
			b.Fatal(err) // warm the per-depth sub-index
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.UTK2(ctx, Query{K: benchK, Region: r}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineHotUTK1 measures the cache-hit path: repeated identical
// queries served straight from the LRU.
func BenchmarkEngineHotUTK1(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	e, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK})
	if err != nil {
		b.Fatal(err)
	}
	gr := benchBox(b, benchD-1, benchSigma)
	lo, hi := gr.Bounds()
	r, err := NewBoxRegion(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.UTK1(ctx, Query{K: benchK, Region: r}); err != nil {
		b.Fatal(err) // populate the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.UTK1(ctx, Query{K: benchK, Region: r}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUTK2 measures cold UTK2 scaling with the Workers option on the
// 50k/d=4 configuration: the full JAA pipeline (prefiltered BBS graph build
// plus refinement), sequential versus the exact region decomposition at
// increasing worker counts. The region uses σ = 0.05 and k = 20 (the same
// widened workload BenchmarkParallelRSA uses) so the run is
// refinement-bound; at the σ = 0.01 default this seed's region yields
// candidates ≤ k — a single-cell answer with no refinement to decompose.
func BenchmarkUTK2(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, 0.05)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, 20, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUTK2AdaptiveSplit compares the decomposed UTK2 run under the
// fixed Workers·4 piece count against the cost-model-driven choice (a
// SplitModel calibrated from a few decomposed runs first, the way a
// long-lived engine calibrates across queries). Same refinement-bound
// workload as BenchmarkUTK2.
func BenchmarkUTK2AdaptiveSplit(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, 0.05)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d/fixed", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, 20, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("workers=%d/adaptive", workers), func(b *testing.B) {
			model := &core.SplitModel{}
			// Calibration: runs at different worker counts observe pieces of
			// different volumes, which is what identifies the cost curve.
			for _, w := range []int{2, 4, 8} {
				if _, _, err := core.JAA(idx.tree, r, 20, core.Options{Workers: w, Split: model}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.JAA(idx.tree, r, 20, core.Options{Workers: workers, Split: model}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelRSA measures the Workers option scaling.
func BenchmarkParallelRSA(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	r := benchBox(b, benchD-1, 0.05) // larger region: more candidates to share
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RSA(idx.tree, r, 20, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDynEngine builds a 10k-point engine for the update benchmarks: the
// incremental Insert/Delete path is compared against BenchmarkEngineRebuild,
// the cost a static engine pays per record change.
func benchDynEngine(b *testing.B) *Engine {
	b.Helper()
	idx := benchIND(b, 10000, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	e, err := ds.NewEngine(EngineConfig{MaxK: benchK, CacheEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineRebuild is the static baseline for the update benchmarks:
// the full engine construction (index + skyband superset) an immutable
// engine re-pays whenever a single record changes.
func BenchmarkEngineRebuild(b *testing.B) {
	idx := benchIND(b, 10000, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.NewEngine(EngineConfig{MaxK: benchK, CacheEntries: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsert measures one incremental insert on a 10k-point
// engine, mixing bulk-region records with occasional near-skyband ones (the
// expensive case: dominance repair plus an index republish).
func BenchmarkEngineInsert(b *testing.B) {
	e := benchDynEngine(b)
	rng := rand.New(rand.NewSource(5))
	recs := make([][]float64, 4096)
	for i := range recs {
		rec := make([]float64, benchD)
		for j := range rec {
			rec[j] = rng.Float64()
		}
		if i%8 == 0 {
			for j := range rec {
				rec[j] = 0.9 + 0.1*rng.Float64()
			}
		}
		recs[i] = rec
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%4096 == 0 {
			// Inserts accumulate members (duplicates tie rather than evict),
			// so reset the engine off the clock to keep ns/op independent
			// of b.N.
			b.StopTimer()
			e = benchDynEngine(b)
			b.StartTimer()
		}
		if _, err := e.Insert(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDelete measures one incremental delete, cycling through a
// shuffled victim order so band members and bulk records are interleaved.
func BenchmarkEngineDelete(b *testing.B) {
	e := benchDynEngine(b)
	rng := rand.New(rand.NewSource(6))
	victims := rng.Perm(10000)
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == len(victims) {
			// Victims exhausted: rebuild the engine off the clock.
			b.StopTimer()
			e = benchDynEngine(b)
			next = 0
			b.StartTimer()
		}
		if err := e.Delete(victims[next]); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// BenchmarkUpdateThenQuery measures the serving cost of interleaved traffic:
// every iteration applies one insert and then answers a UTK1 query, so the
// timer covers incremental maintenance, precise cache invalidation, and the
// (possibly invalidated) query recomputation.
func BenchmarkUpdateThenQuery(b *testing.B) {
	idx := benchIND(b, 10000, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	e, err := ds.NewEngine(EngineConfig{MaxK: benchK})
	if err != nil {
		b.Fatal(err)
	}
	gr := benchBox(b, benchD-1, benchSigma)
	lo, hi := gr.Bounds()
	r, err := NewBoxRegion(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := Query{K: benchK, Region: r}
	if _, err := e.UTK1(ctx, q); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%4096 == 0 {
			// Near-top inserts accumulate in the band; rebuild off the clock
			// so ns/op stays independent of b.N.
			b.StopTimer()
			e, err = ds.NewEngine(EngineConfig{MaxK: benchK})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.UTK1(ctx, q); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		rec := make([]float64, benchD)
		for j := range rec {
			rec[j] = 0.85 + 0.15*rng.Float64() // near-top: frequently invalidating
		}
		if _, err := e.Insert(rec); err != nil {
			b.Fatal(err)
		}
		if _, err := e.UTK1(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineContainment measures the containment-reuse fast path: with
// one UTK2 partitioning cached for an outer region, queries for fresh nested
// regions (never seen before, so always exact-fingerprint misses) are served
// by cell clipping. "cold" is the same nested-region stream paying the full
// pipeline — the bound the derived path must sit far below; the existing
// warm/hot engine benchmarks are the other reference points.
func BenchmarkEngineContainment(b *testing.B) {
	idx := benchIND(b, benchN, benchD)
	ds, err := NewDataset(idx.data)
	if err != nil {
		b.Fatal(err)
	}
	dim := benchD - 1
	gr := benchBox(b, dim, 0.02)
	lo, hi := gr.Bounds()
	outer, err := NewBoxRegion(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	// Nested regions keep 90–98% of the outer extent at a random offset —
	// the near-miss traffic pattern containment reuse exists for.
	mkInner := func(i int) *Region {
		rng := rand.New(rand.NewSource(int64(i) + 11))
		l := make([]float64, dim)
		h := make([]float64, dim)
		for j := range l {
			w := hi[j] - lo[j]
			shrink := (0.02 + 0.08*rng.Float64()) * w
			off := rng.Float64() * shrink
			l[j] = lo[j] + off
			h[j] = hi[j] - (shrink - off)
		}
		r, err := NewBoxRegion(l, h)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	ctx := context.Background()

	b.Run("cold/utk2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ds.UTK2(Query{K: benchK, Region: mkInner(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, variant := range []string{"utk1", "utk2"} {
		b.Run("derived/"+variant, func(b *testing.B) {
			e, err := ds.NewEngine(EngineConfig{MaxK: 2 * benchK})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.UTK2(ctx, Query{K: benchK, Region: outer}); err != nil {
				b.Fatal(err) // cache the containment source
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := Query{K: benchK, Region: mkInner(i)}
				var derived bool
				if variant == "utk1" {
					res, err := e.UTK1(ctx, q)
					if err != nil {
						b.Fatal(err)
					}
					derived = res.Derived
				} else {
					res, err := e.UTK2(ctx, q)
					if err != nil {
						b.Fatal(err)
					}
					derived = res.Derived
				}
				if !derived {
					b.Fatal("nested query was not containment-derived")
				}
			}
			if st := e.Stats(); st.DerivedHits != uint64(b.N) {
				b.Fatalf("derived hits %d != %d iterations", st.DerivedHits, b.N)
			}
		})
	}
}
