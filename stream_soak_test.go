package utk

// Sustained-update soak: bursts of ApplyBatch churn (including coalescible
// insert→delete pairs) run against concurrent UTK1/UTK2 queriers, and after
// every burst the engine's maintained band is differentially checked against
// a static engine rebuilt from the current live records — the invariant that
// makes incremental maintenance "exact" rather than approximate. Runs over
// both backends (single engine and a 3-shard federation) and is part of the
// CI -race suites.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func TestStreamSoak(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single", 1}, {"shards=3", 3}} {
		t.Run(tc.name, func(t *testing.T) {
			streamSoak(t, tc.shards)
		})
	}
}

func streamSoak(t *testing.T, shards int) {
	const (
		n, dim, k      = 3000, 3, 8
		batchSize      = 40
		churnPairs     = 5
		batchesPerRoll = 4
	)
	bursts := 6
	if testing.Short() {
		bursts = 3
	}

	data := dataset.Synthetic(dataset.IND, n, dim, 3)
	ds, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	var e *Engine
	if shards > 1 {
		e, err = ds.NewShardedEngine(shards, EngineConfig{MaxK: k})
	} else {
		e, err = ds.NewEngine(EngineConfig{MaxK: k})
	}
	if err != nil {
		t.Fatal(err)
	}
	boxes := experiments.RandomBoxes(dim-1, 0.05, 6, 9)
	regions := make([]*Region, len(boxes))
	for i, b := range boxes {
		lo, hi := b.Bounds()
		if regions[i], err = NewBoxRegion(lo, hi); err != nil {
			t.Fatal(err)
		}
	}

	// Queriers hammer the engine for the whole soak, including while the
	// post-burst verification reads State() — the concurrency -race vets.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 21))
			for i := 0; ctx.Err() == nil; i++ {
				q := Query{K: 1 + rng.Intn(k), Region: regions[rng.Intn(len(regions))]}
				var err error
				if i%4 == 3 {
					_, err = e.UTK2(ctx, q)
				} else {
					_, err = e.UTK1(ctx, q)
				}
				if err != nil && ctx.Err() == nil && !errors.Is(err, ErrSaturated) {
					t.Errorf("concurrent query failed: %v", err)
					return
				}
			}
		}(q)
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	rng := rand.New(rand.NewSource(17))
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	nextID := n
	newRec := func() []float64 {
		rec := make([]float64, dim)
		for j := range rec {
			rec[j] = rng.Float64()
		}
		if rng.Intn(4) == 0 {
			for j := range rec {
				rec[j] = 0.85 + 0.15*rng.Float64()
			}
		}
		return rec
	}

	for burst := 0; burst < bursts; burst++ {
		for b := 0; b < batchesPerRoll; b++ {
			plain := batchSize - 2*churnPairs
			nIns := plain / 2
			nDel := plain - nIns
			ops := make([]UpdateOp, 0, batchSize)
			for i := 0; i < nDel && len(live) > 4*k; i++ {
				j := rng.Intn(len(live))
				ops = append(ops, UpdateOp{Kind: UpdateDelete, ID: live[j]})
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			insStart := len(ops)
			for i := 0; i < nIns; i++ {
				ops = append(ops, UpdateOp{Kind: UpdateInsert, Record: newRec()})
			}
			predicted := nextID + nIns
			for p := 0; p < churnPairs; p++ {
				ops = append(ops,
					UpdateOp{Kind: UpdateInsert, Record: newRec()},
					UpdateOp{Kind: UpdateDelete, ID: predicted})
				predicted++
			}
			res, err := e.ApplyBatch(ops)
			if err != nil {
				t.Fatalf("burst %d batch %d: %v", burst, b, err)
			}
			for i := insStart; i < insStart+nIns; i++ {
				live = append(live, res.IDs[i])
			}
			for _, id := range res.IDs {
				if id >= nextID {
					nextID = id + 1
				}
			}
		}
		verifySoakBurst(t, e, k, regions, len(live))
		if t.Failed() {
			t.Fatalf("burst %d: differential check failed", burst)
		}
	}
	if st := e.Stats(); st.CoalescedOps == 0 {
		t.Fatal("soak applied churn pairs but nothing coalesced")
	}
}

// verifySoakBurst rebuilds a static dataset from the engine's current live
// records and checks (1) the maintained band against the statically computed
// k-skyband — exact set equality for a single engine; for shards, the global
// band must be covered by the union of per-shard bands (the merge-exactness
// precondition) — and (2) UTK1 answers against the static Dataset on every
// soak region.
func verifySoakBurst(t *testing.T, e *Engine, k int, regions []*Region, wantLive int) {
	t.Helper()
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	var (
		liveIDs  []int
		liveRecs [][]float64
		dynBand  = map[int]bool{}
	)
	collect := func(c *engine.State, toGlobal []int) {
		gid := func(local int) int {
			if toGlobal == nil {
				return local
			}
			return toGlobal[local]
		}
		for i, lid := range c.Dyn.LiveIDs {
			liveIDs = append(liveIDs, gid(lid))
			liveRecs = append(liveRecs, c.Dyn.LiveRecs[i])
		}
		for i, lid := range c.Dyn.MemberIDs {
			if c.Dyn.MemberCounts[i] < k {
				dynBand[gid(lid)] = true
			}
		}
	}
	sharded := st.Sharded != nil
	if sharded {
		for sh, c := range st.Sharded.Children {
			collect(c, st.Sharded.LocalToGlobal[sh])
		}
	} else {
		collect(st.Single, nil)
	}
	if len(liveIDs) != wantLive {
		t.Fatalf("engine live count %d != tracked %d", len(liveIDs), wantLive)
	}

	static, err := NewDataset(liveRecs)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := static.KSkyband(k)
	if err != nil {
		t.Fatal(err)
	}
	staticBand := map[int]bool{}
	for _, pos := range sky {
		staticBand[liveIDs[pos]] = true
	}
	for id := range staticBand {
		if !dynBand[id] {
			t.Fatalf("static band member %d missing from maintained band", id)
		}
	}
	if !sharded {
		// Per-shard bands legitimately over-retain (local dominator counts
		// undercount global ones); a single engine's band must match exactly.
		for id := range dynBand {
			if !staticBand[id] {
				t.Fatalf("maintained band retains %d beyond the static band", id)
			}
		}
	}

	// Query differential: the serving answer over the maintained superset
	// must equal the from-scratch answer over the rebuilt dataset.
	ctx := context.Background()
	for _, r := range regions {
		q := Query{K: k, Region: r}
		got, err := e.UTK1(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := static.UTK1(q)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := map[int]bool{}
		for _, pos := range want.Records {
			wantSet[liveIDs[pos]] = true
		}
		if len(got.Records) != len(wantSet) {
			var extra, missing []int
			gotSet := map[int]bool{}
			for _, id := range got.Records {
				gotSet[id] = true
				if !wantSet[id] {
					extra = append(extra, id)
				}
			}
			for id := range wantSet {
				if !gotSet[id] {
					missing = append(missing, id)
				}
			}
			again, aerr := e.UTK1(ctx, Query{K: k, Region: r})
			t.Fatalf("UTK1 answer size %d != static %d (cacheHit=%v extra=%v missing=%v; requery size=%d hit=%v err=%v)",
				len(got.Records), len(wantSet), got.CacheHit, extra, missing, len(again.Records), again.CacheHit, aerr)
		}
		for _, id := range got.Records {
			if !wantSet[id] {
				t.Fatalf("UTK1 answer contains %d, static answer does not", id)
			}
		}
	}
}
