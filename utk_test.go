package utk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
)

func figure1Dataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset([][]float64{
		{8.3, 9.1, 7.2}, // p1
		{2.4, 9.6, 8.6}, // p2
		{5.4, 1.6, 4.1}, // p3
		{2.6, 6.9, 9.4}, // p4
		{7.3, 3.1, 2.4}, // p5
		{7.9, 6.4, 6.6}, // p6
		{8.6, 7.1, 4.3}, // p7
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func figure1Region(t *testing.T) *Region {
	t.Helper()
	r, err := NewBoxRegion([]float64{0.05, 0.05}, []float64{0.45, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUTK1PaperExample(t *testing.T) {
	ds := figure1Dataset(t)
	r := figure1Region(t)
	res, err := ds.UTK1(Query{K: 2, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 5}
	if len(res.Records) != len(want) {
		t.Fatalf("UTK1 = %v, want %v", res.Records, want)
	}
	for i := range want {
		if res.Records[i] != want[i] {
			t.Fatalf("UTK1 = %v, want %v", res.Records, want)
		}
	}
	if res.Stats.Candidates == 0 || res.Stats.RefineDuration < 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

func TestUTK1BaselinesAgree(t *testing.T) {
	ds := figure1Dataset(t)
	r := figure1Region(t)
	base, err := ds.UTK1(Query{K: 2, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoBaselineSK, AlgoBaselineON, AlgoRSA} {
		res, err := ds.UTK1(Query{K: 2, Region: r, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(base.Records) {
			t.Fatalf("algorithm %v: %v != %v", algo, res.Records, base.Records)
		}
		for i := range base.Records {
			if res.Records[i] != base.Records[i] {
				t.Fatalf("algorithm %v: %v != %v", algo, res.Records, base.Records)
			}
		}
	}
}

func TestUTK2PaperExample(t *testing.T) {
	ds := figure1Dataset(t)
	r := figure1Region(t)
	res, err := ds.UTK2(Query{K: 2, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions != len(res.Cells) || res.Stats.UniqueTopKSets != 4 {
		t.Fatalf("stats: %+v with %d cells", res.Stats, len(res.Cells))
	}
	// The four distinct top-2 sets of Figure 1(b).
	want := map[string]bool{"1,3": true, "0,3": true, "0,1": true, "0,5": true}
	got := map[string]bool{}
	for _, c := range res.Cells {
		key := ""
		for i, id := range c.TopK {
			if i > 0 {
				key += ","
			}
			key += string(rune('0' + id))
		}
		got[key] = true
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing top-2 set {%s}; got %v", k, got)
		}
	}
	// CellAt: the leftmost area of R must give {p2, p4} = {1, 3}.
	c := res.CellAt([]float64{0.06, 0.06})
	if c == nil || len(c.TopK) != 2 || c.TopK[0] != 1 || c.TopK[1] != 3 {
		t.Fatalf("CellAt(leftmost) = %+v, want TopK [1 3]", c)
	}
	if res.CellAt([]float64{0.9, 0.05}) != nil {
		t.Fatal("CellAt outside R should return nil")
	}
	// Cell geometry: the interior must be inside its own cell, vertices must
	// satisfy every bounding half-space, and their centroid must be inside.
	for _, cell := range res.Cells {
		if !cell.Contains(cell.Interior) {
			t.Fatalf("cell does not contain its interior %v", cell.Interior)
		}
		vs := cell.Vertices()
		if len(vs) < 3 {
			t.Fatalf("2D cell has %d vertices", len(vs))
		}
		centroid := make([]float64, 2)
		for _, v := range vs {
			for j := range centroid {
				centroid[j] += v[j] / float64(len(vs))
			}
		}
		if !cell.Contains(centroid) {
			t.Fatalf("vertex centroid %v outside cell", centroid)
		}
	}
}

func TestTopKAndScore(t *testing.T) {
	ds := figure1Dataset(t)
	// Weights (0.3, 0.5, 0.2) from the paper's introduction.
	full := []float64{0.3, 0.5, 0.2}
	top, err := ds.TopK(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	// p1 scores 8.48; p7 scores 7.01; p2 scores 7.24: top-2 = {p1, p2}.
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Fatalf("TopK = %v, want [0 1]", top)
	}
	s, err := ds.Score(0, full)
	if err != nil {
		t.Fatal(err)
	}
	if s < 8.47 || s > 8.49 {
		t.Fatalf("Score(p1) = %g, want ≈ 8.48", s)
	}
	reduced := []float64{0.3, 0.5}
	s2, err := ds.Score(0, reduced)
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Fatalf("full (%g) and reduced (%g) scoring disagree", s, s2)
	}
	if _, err := ds.TopK([]float64{0.3}, 2); err == nil {
		t.Fatal("wrong weight length should fail")
	}
	if _, err := ds.TopK(full, 0); err == nil {
		t.Fatal("k = 0 should fail")
	}
}

func TestFilters(t *testing.T) {
	ds := figure1Dataset(t)
	r := figure1Region(t)
	ksb, err := ds.KSkyband(2)
	if err != nil {
		t.Fatal(err)
	}
	rsb, err := ds.RSkyband(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := ds.OnionLayers(2)
	if err != nil {
		t.Fatal(err)
	}
	inK := map[int]bool{}
	for _, id := range ksb {
		inK[id] = true
	}
	for _, id := range rsb {
		if !inK[id] {
			t.Fatalf("r-skyband member %d outside k-skyband", id)
		}
	}
	if len(layers) != 2 {
		t.Fatalf("want 2 onion layers, got %d", len(layers))
	}
	// UTK1 ⊆ r-skyband.
	res, err := ds.UTK1(Query{K: 2, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	inR := map[int]bool{}
	for _, id := range rsb {
		inR[id] = true
	}
	for _, id := range res.Records {
		if !inR[id] {
			t.Fatalf("UTK1 record %d outside r-skyband", id)
		}
	}
}

func TestValidation(t *testing.T) {
	ds := figure1Dataset(t)
	r := figure1Region(t)
	if _, err := NewDataset(nil); err == nil {
		t.Fatal("empty dataset should fail")
	}
	if _, err := NewDataset([][]float64{{1}}); err == nil {
		t.Fatal("1-dimensional records should fail")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("ragged records should fail")
	}
	if _, err := NewDataset([][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN attributes should fail")
	}
	if _, err := NewDataset([][]float64{{1, math.Inf(1)}}); err == nil {
		t.Fatal("infinite attributes should fail")
	}
	if _, err := ds.UTK1(Query{K: 0, Region: r}); err == nil {
		t.Fatal("k = 0 should fail")
	}
	if _, err := ds.UTK1(Query{K: 2}); err == nil {
		t.Fatal("missing region should fail")
	}
	wrong, err := NewBoxRegion([]float64{0.2}, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.UTK1(Query{K: 2, Region: wrong}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := ds.UTK2(Query{K: 2, Region: r, Algorithm: AlgoBaselineSK}); err == nil {
		t.Fatal("UTK2 via baseline should be rejected")
	}
}

func TestPolytopeRegionQuery(t *testing.T) {
	ds := figure1Dataset(t)
	// Triangle inside the Figure 1 box.
	r, err := NewPolytopeRegion(2, []Halfspace{
		{Coef: []float64{1, 0}, Offset: 0.05},
		{Coef: []float64{0, 1}, Offset: 0.05},
		{Coef: []float64{-1, -1}, Offset: -0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.UTK1(Query{K: 2, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("triangle region should produce a result")
	}
	// The polytope is a superset of the Figure 1 box, so its UTK1 must be a
	// superset of the box's UTK1.
	box := figure1Region(t)
	boxRes, err := ds.UTK1(Query{K: 2, Region: box})
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, id := range res.Records {
		in[id] = true
	}
	for _, id := range boxRes.Records {
		if !in[id] {
			t.Fatalf("box UTK1 record %d missing from enclosing polytope UTK1", id)
		}
	}
}

// TestUTK2ConsistencyOnSurrogate exercises the public API end to end on a
// surrogate workload: every UTK2 cell's set must equal a fresh TopK query at
// the cell's interior, and the union must equal UTK1.
func TestUTK2ConsistencyOnSurrogate(t *testing.T) {
	data := dataset.Hotel(400, 3)
	ds, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBoxRegion([]float64{0.2, 0.2, 0.2}, []float64{0.3, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ds.UTK2(Query{K: 5, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := ds.UTK1(Query{K: 5, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	union := map[int]bool{}
	for _, c := range res2.Cells {
		top, err := ds.TopK(c.Interior, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != len(c.TopK) {
			t.Fatalf("cell set %v, brute force %v", c.TopK, top)
		}
		for i := range top {
			if top[i] != c.TopK[i] {
				t.Fatalf("cell set %v, brute force %v at %v", c.TopK, top, c.Interior)
			}
		}
		for _, id := range c.TopK {
			union[id] = true
		}
	}
	var unionIDs []int
	for id := range union {
		unionIDs = append(unionIDs, id)
	}
	sort.Ints(unionIDs)
	if len(unionIDs) != len(res1.Records) {
		t.Fatalf("UTK2 union %v != UTK1 %v", unionIDs, res1.Records)
	}
	for i := range unionIDs {
		if unionIDs[i] != res1.Records[i] {
			t.Fatalf("UTK2 union %v != UTK1 %v", unionIDs, res1.Records)
		}
	}
}

func TestRegionAccessors(t *testing.T) {
	r := figure1Region(t)
	if r.Dim() != 2 {
		t.Fatalf("Dim = %d", r.Dim())
	}
	p := r.Pivot()
	if !r.Contains(p) {
		t.Fatal("pivot must be inside the region")
	}
	if r.Contains([]float64{0.5, 0.5}) {
		t.Fatal("far point should be outside")
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := figure1Dataset(t)
	if ds.Len() != 7 || ds.Dim() != 3 {
		t.Fatalf("Len=%d Dim=%d", ds.Len(), ds.Dim())
	}
	rec := ds.Record(0)
	rec[0] = -1
	if ds.Record(0)[0] == -1 {
		t.Fatal("Record must return a copy")
	}
}

func TestRandomizedPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		data := dataset.Synthetic(dataset.Kind(trial%3), 200, 3, int64(trial))
		ds, err := NewDataset(data)
		if err != nil {
			t.Fatal(err)
		}
		lo := []float64{0.1 + rng.Float64()*0.2, 0.1 + rng.Float64()*0.2}
		hi := []float64{lo[0] + 0.1, lo[1] + 0.1}
		r, err := NewBoxRegion(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(5)
		res1, err := ds.UTK1(Query{K: k, Region: r})
		if err != nil {
			t.Fatal(err)
		}
		// Minimality: each UTK1 record must be hit by some cell of UTK2.
		res2, err := ds.UTK2(Query{K: k, Region: r})
		if err != nil {
			t.Fatal(err)
		}
		hit := map[int]bool{}
		for _, c := range res2.Cells {
			for _, id := range c.TopK {
				hit[id] = true
			}
		}
		for _, id := range res1.Records {
			if !hit[id] {
				t.Fatalf("trial %d: UTK1 record %d has no witness cell", trial, id)
			}
		}
		if len(hit) != len(res1.Records) {
			t.Fatalf("trial %d: UTK2 union has %d records, UTK1 %d", trial, len(hit), len(res1.Records))
		}
	}
}
