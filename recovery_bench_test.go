package utk_test

// BenchmarkRecovery quantifies the point of snapshots: reopening a durable
// dataset (decode snapshot + replay the WAL tail) versus rebuilding the
// engine cold (full R-tree bulk load + k-skyband computation + reapplying
// the update stream) on the 50k/d=4 bench workload. It lives in an external
// test package because the registry/store layers import the root package.

import (
	"math/rand"
	"testing"

	utk "repro"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/store"
)

func BenchmarkRecovery(b *testing.B) {
	const (
		n, d = 50000, 4
		maxK = 10
		tail = 16 // WAL batches past the last snapshot
	)
	recs := dataset.Synthetic(dataset.IND, n, d, 1)
	opts := registry.Options{MaxK: maxK}
	// Disable auto-snapshots so the tail stays exactly `tail` batches long.
	pol := registry.SnapshotPolicy{EveryOps: -1, EveryBytes: -1}

	dir := b.TempDir()
	st, err := store.OpenFile(dir, store.FileConfig{Sync: store.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.NewWithStore(st, pol)
	if _, err := reg.Create("ds", recs, opts); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	batches := make([][]utk.UpdateOp, tail)
	for i := range batches {
		rec := make([]float64, d)
		for j := range rec {
			rec[j] = rng.Float64()
		}
		batches[i] = []utk.UpdateOp{{Kind: utk.UpdateInsert, Record: rec}}
		if _, err := reg.Update("ds", batches[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("reopen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := store.OpenFile(dir, store.FileConfig{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			reg, err := registry.Open(st, pol)
			if err != nil {
				b.Fatal(err)
			}
			ent, err := reg.Get("ds")
			if err != nil {
				b.Fatal(err)
			}
			if live := ent.Engine.Stats().Live; live != n+tail {
				b.Fatalf("recovered live = %d, want %d", live, n+tail)
			}
			st.Close()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := utk.NewDataset(recs)
			if err != nil {
				b.Fatal(err)
			}
			e, err := ds.NewEngine(utk.EngineConfig{MaxK: maxK})
			if err != nil {
				b.Fatal(err)
			}
			for _, ops := range batches {
				if _, err := e.ApplyBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
			if live := e.Stats().Live; live != n+tail {
				b.Fatalf("rebuilt live = %d, want %d", live, n+tail)
			}
		}
	})
}
