package utk

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/oracle"
)

// parallelBackends builds the serving configurations the decomposition
// differential runs against: a single-partition engine and sharded ones.
func parallelBackends(t *testing.T, ds *Dataset, maxK int) map[string]*Engine {
	t.Helper()
	out := map[string]*Engine{}
	single, err := ds.NewEngine(EngineConfig{MaxK: maxK})
	if err != nil {
		t.Fatal(err)
	}
	out["single"] = single
	for _, s := range []int{2, 3} {
		e, err := ds.NewShardedEngine(s, EngineConfig{MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("sharded%d", s)] = e
	}
	return out
}

func parallelRegion(t *testing.T, rng *rand.Rand, dim int) *Region {
	t.Helper()
	for {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		sum := 0.0
		for i := range lo {
			lo[i] = rng.Float64() * 0.4 / float64(dim)
			hi[i] = lo[i] + 0.05 + rng.Float64()*0.25/float64(dim)
			sum += lo[i]
		}
		if sum >= 0.9 {
			continue
		}
		r, err := NewBoxRegion(lo, hi)
		if err == nil {
			return r
		}
	}
}

func topKSetStrings(res *UTK2Result) map[string]bool {
	out := map[string]bool{}
	for _, c := range res.Cells {
		out[fmt.Sprint(c.TopK)] = true
	}
	return out
}

func utk2Union(res *UTK2Result) []int {
	seen := map[int]bool{}
	for _, c := range res.Cells {
		for _, id := range c.TopK {
			seen[id] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// TestParallelDifferential is the serving-stack decomposition differential:
// for d = 2–5 and W = 1–8, every backend (single-partition and sharded) must
// answer a Workers=W query exactly like the direct sequential Dataset run —
// identical UTK1 id sets, identical unique top-k sets for UTK2, and every
// parallel cell's top-k set confirmed by the oracle at its interior point.
func TestParallelDifferential(t *testing.T) {
	dims := []int{2, 3, 4, 5}
	workerSweep := []int{1, 2, 4, 8}
	if testing.Short() {
		dims = []int{2, 4}
		workerSweep = []int{1, 4}
	}
	for _, d := range dims {
		d := d
		rng := rand.New(rand.NewSource(int64(4200 + d)))
		records := dataset.Synthetic(dataset.IND, 260, d, int64(50+d))
		ds, err := NewDataset(records)
		if err != nil {
			t.Fatal(err)
		}
		r := parallelRegion(t, rng, d-1)
		k := 2 + rng.Intn(4)
		seq1, err := ds.UTK1(Query{K: k, Region: r})
		if err != nil {
			t.Fatal(err)
		}
		seq2, err := ds.UTK2(Query{K: k, Region: r})
		if err != nil {
			t.Fatal(err)
		}
		seqSets := topKSetStrings(seq2)
		backends := parallelBackends(t, ds, k+2)
		ctx := context.Background()
		for name, e := range backends {
			for _, workers := range workerSweep {
				name, e, workers := name, e, workers
				t.Run(fmt.Sprintf("seed=%d/d=%d/k=%d/%s/W=%d", 4200+d, d, k, name, workers), func(t *testing.T) {
					q := Query{K: k, Region: r, Workers: workers}
					got1, err := e.UTK1(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(got1.Records) != fmt.Sprint(seq1.Records) {
						t.Fatalf("UTK1 = %v, sequential dataset run = %v", got1.Records, seq1.Records)
					}
					got2, err := e.UTK2(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(utk2Union(got2)) != fmt.Sprint(seq1.Records) {
						t.Fatalf("UTK2 union %v != UTK1 %v", utk2Union(got2), seq1.Records)
					}
					gotSets := topKSetStrings(got2)
					if len(gotSets) != len(seqSets) {
						t.Fatalf("unique top-k sets: %d vs sequential %d", len(gotSets), len(seqSets))
					}
					for s := range gotSets {
						if !seqSets[s] {
							t.Fatalf("top-k set %s missing from the sequential partitioning", s)
						}
					}
					for i, c := range got2.Cells {
						want := oracle.TopKAt(records, c.Interior, k)
						if fmt.Sprint(c.TopK) != fmt.Sprint(want) {
							t.Fatalf("cell %d at %v: top-k %v, oracle %v", i, c.Interior, c.TopK, want)
						}
					}
					if workers > 1 && got2.Stats.Candidates > k && !got2.CacheHit && got2.Stats.EffectiveWorkers != workers {
						t.Errorf("EffectiveWorkers = %d, want %d", got2.Stats.EffectiveWorkers, workers)
					}
				})
			}
		}
	}
}
