package utk

import (
	"context"
	"fmt"
	"testing"
)

// TestShardedEngineFacadeMatchesDataset pins the facade-level federation
// claim: a NewShardedEngine answers UTK1 and UTK2 exactly like the direct
// Dataset computation (and hence like NewEngine), for S = 1..4.
func TestShardedEngineFacadeMatchesDataset(t *testing.T) {
	ds, r := facadeFixture(t)
	ctx := context.Background()
	for S := 1; S <= 4; S++ {
		e, err := ds.NewShardedEngine(S, EngineConfig{MaxK: 10})
		if err != nil {
			t.Fatal(err)
		}
		if e.Shards() != S {
			t.Fatalf("Shards() = %d, want %d", e.Shards(), S)
		}
		for _, k := range []int{1, 5, 10} {
			q := Query{K: k, Region: r}
			want1, err := ds.UTK1(q)
			if err != nil {
				t.Fatal(err)
			}
			got1, err := e.UTK1(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got1.Records) != fmt.Sprint(want1.Records) {
				t.Errorf("S=%d k=%d: sharded UTK1 %v != dataset %v", S, k, got1.Records, want1.Records)
			}
			want2, err := ds.UTK2(q)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := e.UTK2(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(cellSets(got2.Cells)) != fmt.Sprint(cellSets(want2.Cells)) {
				t.Errorf("S=%d k=%d: sharded UTK2 cells diverge from dataset", S, k)
			}
		}
	}
}

// TestShardedEngineFacadeUpdates routes updates through the sharded facade
// and checks stats plumbing: ids continue the dataset's range, answers see
// the update, and EngineStats reports the shard count and aggregated state.
func TestShardedEngineFacadeUpdates(t *testing.T) {
	ds, r := facadeFixture(t)
	ctx := context.Background()
	e, err := ds.NewShardedEngine(3, EngineConfig{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}

	id, err := e.Insert([]float64{2, 2, 2}) // dominates everything
	if err != nil {
		t.Fatal(err)
	}
	if id != ds.Len() {
		t.Fatalf("insert id = %d, want %d", id, ds.Len())
	}
	res, err := e.UTK1(ctx, Query{K: 3, Region: r})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, got := range res.Records {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("dominating insert %d missing from sharded UTK1 %v", id, res.Records)
	}

	batch, err := e.ApplyBatch([]UpdateOp{
		{Kind: UpdateDelete, ID: id},
		{Kind: UpdateInsert, Record: []float64{0.5, 0.5, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.IDs[0] != id || batch.IDs[1] != id+1 {
		t.Fatalf("batch ids %v, want [%d %d]", batch.IDs, id, id+1)
	}
	if batch.Live != ds.Len()+1 {
		t.Fatalf("live %d, want %d", batch.Live, ds.Len()+1)
	}

	st := e.Stats()
	if st.Shards != 3 {
		t.Fatalf("stats shards = %d, want 3", st.Shards)
	}
	if st.Inserts != 2 || st.Deletes != 1 {
		t.Fatalf("update counters: %+v", st)
	}
	if st.Live != ds.Len()+1 {
		t.Fatalf("stats live = %d, want %d", st.Live, ds.Len()+1)
	}

	// Unsharded engines report Shards == 1 through the same stats surface.
	single, err := ds.NewEngine(EngineConfig{MaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Stats().Shards; got != 1 {
		t.Fatalf("single-engine stats shards = %d, want 1", got)
	}
}
