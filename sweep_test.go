package utk

import (
	"math/rand"
	"testing"
)

func TestSweep2DAlgorithmMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	data := make([][]float64, 800)
	for i := range data {
		data[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	ds, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewBoxRegion([]float64{0.3}, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 9} {
		def, err := ds.UTK1(Query{K: k, Region: region})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := ds.UTK1(Query{K: k, Region: region, Algorithm: AlgoSweep2D})
		if err != nil {
			t.Fatal(err)
		}
		if len(def.Records) != len(sw.Records) {
			t.Fatalf("k=%d: sweep %v != RSA %v", k, sw.Records, def.Records)
		}
		for i := range def.Records {
			if def.Records[i] != sw.Records[i] {
				t.Fatalf("k=%d: sweep %v != RSA %v", k, sw.Records, def.Records)
			}
		}
		// UTK2: every sweep cell interior must agree with a fresh TopK probe,
		// and the partition/unique-set stats must be consistent.
		res2, err := ds.UTK2(Query{K: k, Region: region, Algorithm: AlgoSweep2D})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Stats.Partitions != len(res2.Cells) || res2.Stats.UniqueTopKSets > res2.Stats.Partitions {
			t.Fatalf("stats inconsistent: %+v", res2.Stats)
		}
		for _, c := range res2.Cells {
			top, err := ds.TopK(c.Interior, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(top) != len(c.TopK) {
				t.Fatalf("cell %v vs probe %v", c.TopK, top)
			}
			for i := range top {
				if top[i] != c.TopK[i] {
					t.Fatalf("cell %v vs probe %v at %v", c.TopK, top, c.Interior)
				}
			}
		}
		// CellAt must work on sweep cells too.
		if c := res2.CellAt([]float64{0.45}); c == nil {
			t.Fatal("CellAt inside the interval returned nil")
		}
		if c := res2.CellAt([]float64{0.9}); c != nil {
			t.Fatal("CellAt outside the interval should return nil")
		}
	}
}

func TestSweep2DRequires2D(t *testing.T) {
	ds := figure1Dataset(t) // 3 attributes
	r := figure1Region(t)
	if _, err := ds.UTK1(Query{K: 2, Region: r, Algorithm: AlgoSweep2D}); err == nil {
		t.Fatal("sweep on 3-attribute data should fail")
	}
	if _, err := ds.UTK2(Query{K: 2, Region: r, Algorithm: AlgoSweep2D}); err == nil {
		t.Fatal("sweep UTK2 on 3-attribute data should fail")
	}
}
