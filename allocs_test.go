package utk

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

// Allocation budgets for the serving hot paths, as allocs/op upper bounds.
// The pins sit ~3× above the values measured on the 50k/d=4 default workload
// so they tolerate workload drift and pool-eviction noise (sync.Pool contents
// die with any GC cycle, so an unlucky run re-allocates an arena or an LP
// workspace) while still catching a regression that reintroduces per-call
// allocation on a hot path — the class of bug the scratch arenas, the pooled
// LP workspaces, and the columnar prefilter kernel exist to prevent.
//
// If a legitimate change moves a budget, re-measure with
// `go test -run TestAllocBudgets -v` (the test logs measured values) and
// update the pin to ~3× the new measurement in the same commit, saying why.
const (
	allocBudgetHotUTK1     = 75   // measured 25
	allocBudgetHotUTK2     = 100  // measured 34
	allocBudgetWarmUTK1    = 420  // measured 140
	allocBudgetWarmUTK2    = 500  // measured 164
	allocBudgetDerivedUTK1 = 100  // measured 33
	allocBudgetDerivedUTK2 = 4000 // measured ~1300 (copies every clipped cell)
	allocBudgetColdUTK1    = 350  // measured 114
	allocBudgetColdUTK2    = 450  // measured 139
)

// TestAllocBudgets pins allocs/op on the serving fast paths: cache hits
// (hot), cache-disabled engine recomputes over the maintained superset
// (warm), containment-derived answers (derived), and the full cold Dataset
// pipeline including tree filtering (cold).
func TestAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	recs := dataset.Synthetic(dataset.IND, 50000, 4, 1)
	ds, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	gr := experiments.RandomBoxes(3, 0.01, 1, 7)[0]
	lo, hi := gr.Bounds()
	r, err := NewBoxRegion(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{K: 10, Region: r}
	ctx := context.Background()

	check := func(name string, budget float64, f func()) {
		t.Helper()
		got := testing.AllocsPerRun(50, f)
		t.Logf("%-14s %6.1f allocs/op (budget %v)", name, got, budget)
		if got > budget {
			t.Errorf("%s: %.1f allocs/op exceeds the %v budget", name, got, budget)
		}
	}

	// Cold: the full per-query pipeline, R-tree filtering included.
	check("cold/utk1", allocBudgetColdUTK1, func() {
		if _, err := ds.UTK1(q); err != nil {
			t.Fatal(err)
		}
	})
	check("cold/utk2", allocBudgetColdUTK2, func() {
		if _, err := ds.UTK2(q); err != nil {
			t.Fatal(err)
		}
	})

	// Warm: cache-disabled engine, so every query recomputes but filters over
	// the maintained superset through the columnar kernel.
	warm, err := ds.NewEngine(EngineConfig{MaxK: 20, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.UTK1(ctx, q); err != nil {
		t.Fatal(err) // derive the per-depth sub-index off the measurement
	}
	check("warm/utk1", allocBudgetWarmUTK1, func() {
		if _, err := warm.UTK1(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	check("warm/utk2", allocBudgetWarmUTK2, func() {
		if _, err := warm.UTK2(ctx, q); err != nil {
			t.Fatal(err)
		}
	})

	// Hot: repeated identical queries served straight from the result cache.
	hot, err := ds.NewEngine(EngineConfig{MaxK: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hot.UTK1(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := hot.UTK2(ctx, q); err != nil {
		t.Fatal(err)
	}
	check("hot/utk1", allocBudgetHotUTK1, func() {
		res, err := hot.UTK1(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatal("hot query missed the cache")
		}
	})
	check("hot/utk2", allocBudgetHotUTK2, func() {
		res, err := hot.UTK2(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatal("hot query missed the cache")
		}
	})

	// Derived: cache one outer UTK2 partitioning, then serve a stream of
	// distinct nested regions by cell clipping. Each run needs a fresh nested
	// region (a repeat would be an exact cache hit instead), so regions are
	// pre-built and consumed one per run.
	der, err := ds.NewEngine(EngineConfig{MaxK: 20, CacheEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	outerGr := experiments.RandomBoxes(3, 0.02, 1, 7)[0]
	olo, ohi := outerGr.Bounds()
	outer, err := NewBoxRegion(olo, ohi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := der.UTK2(ctx, Query{K: 10, Region: outer}); err != nil {
		t.Fatal(err) // cache the outer partitioning
	}
	nested := make([]*Region, 0, 160)
	for i := 0; len(nested) < cap(nested); i++ {
		nlo := make([]float64, len(olo))
		nhi := make([]float64, len(ohi))
		for j := range nlo {
			w := ohi[j] - olo[j]
			nlo[j] = olo[j] + w*(0.05+0.001*float64(i))
			nhi[j] = ohi[j] - w*(0.05+0.0013*float64(i))
		}
		nr, err := NewBoxRegion(nlo, nhi)
		if err != nil {
			continue
		}
		nested = append(nested, nr)
	}
	next := 0
	take := func() *Region {
		if next >= len(nested) {
			t.Fatal("nested region stream exhausted")
		}
		nr := nested[next]
		next++
		return nr
	}
	check("derived/utk1", allocBudgetDerivedUTK1, func() {
		res, err := der.UTK1(ctx, Query{K: 10, Region: take()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Derived {
			t.Fatal("nested query was not containment-derived")
		}
	})
	check("derived/utk2", allocBudgetDerivedUTK2, func() {
		res, err := der.UTK2(ctx, Query{K: 10, Region: take()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Derived {
			t.Fatal("nested query was not containment-derived")
		}
	})
}
