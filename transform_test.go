package utk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestPowerTransform(t *testing.T) {
	f, err := PowerTransform(2)
	if err != nil {
		t.Fatal(err)
	}
	if f(3) != 9 || f(0) != 0 {
		t.Fatal("square transform wrong")
	}
	if f(-2) != -4 {
		t.Fatal("negative inputs must stay monotone")
	}
	if _, err := PowerTransform(0); err == nil {
		t.Fatal("p = 0 should fail")
	}
	if _, err := PowerTransform(-1); err == nil {
		t.Fatal("negative p should fail")
	}
}

func TestTransformRecordsValidation(t *testing.T) {
	if _, err := TransformRecords(nil, nil); err == nil {
		t.Fatal("empty records should fail")
	}
	if _, err := TransformRecords([][]float64{{1, 2}}, []MonotoneTransform{nil}); err == nil {
		t.Fatal("transform count mismatch should fail")
	}
	decreasing := func(x float64) float64 { return -x }
	if _, err := TransformRecords([][]float64{{1, 2}, {3, 4}},
		[]MonotoneTransform{decreasing, nil}); err == nil {
		t.Fatal("non-monotone transform should be rejected")
	}
	out, err := TransformRecords([][]float64{{1, 4}, {2, 9}},
		[]MonotoneTransform{nil, math.Sqrt})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 1 || out[0][1] != 2 || out[1][1] != 3 {
		t.Fatalf("transform output wrong: %v", out)
	}
}

// TestGeneralizedScoringUTK1 validates the Section 6 reduction: a UTK1 query
// over squared attributes must equal brute force under the generalized score
// Σ w_i·x_i², and can differ from the plain-attribute answer.
func TestGeneralizedScoringUTK1(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	data := make([][]float64, 30)
	for i := range data {
		data[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	square, err := PowerTransform(2)
	if err != nil {
		t.Fatal(err)
	}
	transformed, err := TransformRecords(data, []MonotoneTransform{square, square, square})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(transformed)
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewBoxRegion([]float64{0.2, 0.2}, []float64{0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	res, err := ds.UTK1(Query{K: k, Region: region})
	if err != nil {
		t.Fatal(err)
	}

	// Brute force over the generalized score at sampled weights: every
	// sampled top-k set must be inside the UTK1 result.
	in := map[int]bool{}
	for _, id := range res.Records {
		in[id] = true
	}
	for s := 0; s < 2000; s++ {
		w := []float64{0.2 + rng.Float64()*0.2, 0.2 + rng.Float64()*0.2}
		type scored struct {
			id int
			v  float64
		}
		all := make([]scored, len(data))
		for i, p := range data {
			v := w[0]*p[0]*p[0] + w[1]*p[1]*p[1] + (1-w[0]-w[1])*p[2]*p[2]
			all[i] = scored{i, v}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
		for i := 0; i < k; i++ {
			if !in[all[i].id] {
				t.Fatalf("generalized top-%d member %d at %v missing from UTK1 %v",
					k, all[i].id, w, res.Records)
			}
		}
	}
}

// TestTransformChangesResult demonstrates that the generalized scoring is
// genuinely different from plain scoring on suitable data.
func TestTransformChangesResult(t *testing.T) {
	// Record 1 wins on squared attributes (extreme values), record 2 on raw.
	data := [][]float64{
		{9, 1},
		{6, 6},
	}
	region, err := NewBoxRegion([]float64{0.45}, []float64{0.55})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := plain.UTK1(Query{K: 1, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	square, _ := PowerTransform(2)
	tr, err := TransformRecords(data, []MonotoneTransform{square, square})
	if err != nil {
		t.Fatal(err)
	}
	squared, err := NewDataset(tr)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := squared.UTK1(Query{K: 1, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	// Plain near w=(0.5, 0.5): record 1 scores 5, record 2 scores 6 → {1}.
	if len(p1.Records) != 1 || p1.Records[0] != 1 {
		t.Fatalf("plain UTK1 = %v, want [1]", p1.Records)
	}
	// Squared: record 0 scores 41, record 1 scores 36 → {0}.
	if len(p2.Records) != 1 || p2.Records[0] != 0 {
		t.Fatalf("squared UTK1 = %v, want [0]", p2.Records)
	}
}
